"""Analytical deployment model of the STM32L4R5 + X-CUBE-AI baseline.

The paper compares MAUPITI against an off-the-shelf STM32L4R5 (Cortex-M4
class, 120 MHz) running networks deployed with the proprietary X-CUBE-AI
toolchain.  X-CUBE-AI only supports 8-bit quantization, ships a sizeable
runtime (~20 kB of code), keeps per-layer tensor descriptors and scratch
buffers in RAM, and executes roughly an order of magnitude faster than the
20 MHz MAUPITI thanks to the higher clock, the richer ISA and operator
fusion — at the cost of a ~13x higher power draw.

Because the X-CUBE-AI runtime is closed source, this model is analytical:
code size, data size and cycle counts are parametric formulas calibrated on
the operating points published in Table I of the paper.  The formulas keep
the *shape* of the comparison (constant large code overhead, 8-bit-only
weights, lower latency, higher power) rather than reproducing exact figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.energy import STM32_SPEC, PlatformSpec
from ..quant.integer import IntegerLayer, IntegerNetwork, PoolSpec


@dataclass
class Stm32DeploymentModel:
    """Parametric X-CUBE-AI deployment estimate.

    Parameters
    ----------
    runtime_code_bytes:
        Fixed code footprint of the X-CUBE-AI inference runtime.
    per_layer_code_bytes:
        Generated glue code per network layer.
    runtime_data_bytes:
        Fixed RAM taken by the runtime (tensor descriptors, scratch).
    cycles_per_mac:
        Effective cycles per multiply-accumulate including load/store
        overhead (the Cortex-M4 SMLAD path of X-CUBE-AI).
    fixed_cycles:
        Per-inference runtime overhead (graph dispatch, pre/post processing).
    """

    spec: PlatformSpec = STM32_SPEC
    runtime_code_bytes: int = 22_500
    per_layer_code_bytes: int = 90
    runtime_data_bytes: int = 7_800
    cycles_per_mac: float = 2.6
    fixed_cycles: int = 28_000

    # ------------------------------------------------------------------ #
    def code_size_bytes(self, network: IntegerNetwork) -> int:
        num_layers = len(network.layers())
        return int(self.runtime_code_bytes + self.per_layer_code_bytes * num_layers)

    def data_size_bytes(self, network: IntegerNetwork) -> int:
        """Weights are stored at 8 bits regardless of the mixed-precision
        scheme (X-CUBE-AI limitation), plus 32-bit biases, activation
        buffers and the fixed runtime RAM."""
        weights = sum(layer.weight.size for layer in network.layers())
        biases = sum(layer.bias.size * 4 for layer in network.layers())
        activations = self._activation_bytes(network)
        return int(weights + biases + activations + self.runtime_data_bytes)

    def inference_cycles(self, network: IntegerNetwork) -> int:
        return int(self.fixed_cycles + self.cycles_per_mac * network.macs())

    def latency_s(self, network: IntegerNetwork) -> float:
        return self.spec.cycles_to_seconds(self.inference_cycles(network))

    def energy_uj(self, network: IntegerNetwork) -> float:
        return self.spec.energy_per_inference_uj(self.inference_cycles(network))

    # ------------------------------------------------------------------ #
    def _activation_bytes(self, network: IntegerNetwork) -> int:
        """8-bit activation buffers sized like the X-CUBE-AI arena (the two
        largest consecutive tensors coexist)."""
        sizes = []
        c, h, w = network.input_shape
        sizes.append(c * h * w)
        for node in network.graph:
            if isinstance(node, PoolSpec):
                if node.kind == "maxpool":
                    h = (h - node.kernel[0]) // node.stride[0] + 1
                    w = (w - node.kernel[1]) // node.stride[1] + 1
                    sizes.append(c * h * w)
                continue
            layer: IntegerLayer = node
            if layer.kind == "conv":
                c_out, _, kh, kw = layer.weight.shape
                h = (h + 2 * layer.padding[0] - kh) // layer.stride[0] + 1
                w = (w + 2 * layer.padding[1] - kw) // layer.stride[1] + 1
                c = c_out
                sizes.append(c * h * w)
            else:
                c, h, w = layer.weight.shape[0], 1, 1
                sizes.append(c * 4 if not layer.requantize else c)
        # Ping-pong arena: the two largest adjacent tensors must coexist.
        best = 0
        for a, b in zip(sizes[:-1], sizes[1:]):
            best = max(best, a + b)
        return best
