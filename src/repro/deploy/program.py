"""Model compiler: IntegerNetwork → program image for the IBEX / MAUPITI core.

The compiler performs the three tasks the paper's deployment toolchain covers
(Sec. III-B3):

1. **Data layout** — activations live in HWC order with each per-pixel
   channel run zero-padded to a 32-bit word; weights are re-laid out as
   ``[oc][ky][kx][ic]`` padded runs (convolutions) or as padded row vectors
   matching the flattened activation layout (fully-connected layers); biases
   are INT32.
2. **Code generation** — one specialized kernel per layer (scalar kernels for
   the vanilla IBEX, SDOTP kernels for MAUPITI) plus a final argmax block and
   an ``ebreak``.
3. **Image accounting** — code size (with the RV32C heuristic), data size
   (weights + biases + activation buffers + outputs) and a check that both
   fit the 16 KB instruction / 16 KB data memories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

import numpy as np

from ..hw.isa import Instruction
from ..hw.memory import DMEM_BASE
from ..quant.integer import IntegerLayer, IntegerNetwork, PoolSpec
from .codegen import (
    ActBuffer,
    Assembler,
    ConvKernelConfig,
    FcKernelConfig,
    KernelHint,
    PoolKernelConfig,
    emit_argmax,
    emit_conv_layer,
    emit_fc_layer,
    emit_maxpool_layer,
)
from .packing import (
    pack_padded_run,
    pack_runs,
    padded_run_bytes,
    padded_run_length,
)


def _align4(value: int) -> int:
    return (value + 3) & ~3


@dataclass
class DataChunk:
    """A blob of initialized data placed at a fixed DMEM address."""

    name: str
    address: int
    payload: bytes

    @property
    def size(self) -> int:
        return len(self.payload)


@dataclass
class LayerSummary:
    """Per-layer accounting used by reports and tests."""

    name: str
    kind: str
    bits: int
    out_bits: int
    macs: int
    weight_bytes: int
    bias_bytes: int
    activation_bytes: int


@dataclass
class CompiledModel:
    """A network compiled for one platform flavour (scalar or SDOTP)."""

    program: List[Instruction]
    code_size_bytes: int
    data_size_bytes: int
    weights_size_bytes: int
    activations_size_bytes: int
    data_chunks: List[DataChunk]
    input_buffer: ActBuffer
    logits_address: int
    result_address: int
    num_classes: int
    input_scale: float
    input_zero_point: int
    use_sdotp: bool
    layer_summaries: List[LayerSummary] = field(default_factory=list)
    # One annotation per structured loop emitted by codegen; the fast
    # simulator's parity tests assert each one hits a vectorized handler.
    kernel_hints: List[KernelHint] = field(default_factory=list)

    def describe(self) -> str:
        flavour = "sdotp" if self.use_sdotp else "scalar"
        return (
            f"CompiledModel({flavour}, code={self.code_size_bytes}B, "
            f"data={self.data_size_bytes}B, layers={len(self.layer_summaries)})"
        )

    @property
    def fingerprint(self) -> str:
        """Stable content hash of the program image.

        Covers every instruction field that affects execution plus the
        constant data chunks, so two independently compiled but identical
        models share a fingerprint (and therefore a JIT trace-cache slot),
        while any codegen or weight change produces a new one.
        """
        import hashlib

        h = hashlib.sha256()
        for i in self.program:
            h.update(
                f"{i.mnemonic}|{i.rd}|{i.rs1}|{i.rs2}|{i.imm};".encode()
            )
        for chunk in self.data_chunks:
            h.update(chunk.address.to_bytes(4, "little"))
            h.update(chunk.payload)
        return h.hexdigest()


class _Allocator:
    """Bump allocator over the data memory."""

    def __init__(self, base: int = DMEM_BASE):
        self.cursor = base
        self.base = base

    def alloc(self, size: int) -> int:
        address = self.cursor
        self.cursor = _align4(self.cursor + size)
        return address

    @property
    def used(self) -> int:
        return self.cursor - self.base


def _make_buffer(
    allocator: _Allocator,
    height: int,
    width: int,
    channels: int,
    bits: int,
    pad: int,
) -> ActBuffer:
    """Allocate an activation buffer with padded strides."""
    pixel_stride = padded_run_bytes(channels, bits)
    padded_h = height + 2 * pad
    padded_w = width + 2 * pad
    row_stride = padded_w * pixel_stride
    size = padded_h * row_stride
    address = allocator.alloc(size)
    return ActBuffer(
        address=address,
        height=padded_h,
        width=padded_w,
        channels=channels,
        bits=bits,
        pad=pad,
        pixel_stride=pixel_stride,
        row_stride=row_stride,
        size_bytes=size,
    )


def _conv_weight_image(layer: IntegerLayer) -> Tuple[bytes, int, int]:
    """Pack conv weights as [oc][ky][kx][padded ic runs].

    Returns ``(payload, tap_stride_bytes, oc_stride_bytes)``.
    """
    c_out, c_in, kh, kw = layer.weight.shape
    tap_stride = padded_run_bytes(c_in, layer.weight_bits)
    runs = layer.weight.transpose(0, 2, 3, 1).reshape(c_out * kh * kw, c_in)
    payload = pack_runs(runs, layer.weight_bits)
    return payload, tap_stride, kh * kw * tap_stride


def _fc_weight_image(
    layer: IntegerLayer, in_shape: Tuple[int, int, int], in_buf_bits: int
) -> Tuple[bytes, int, int]:
    """Re-lay FC weights to match the flattened padded HWC activation buffer.

    ``in_shape`` is the (C, H, W) shape of the producer activation; the
    original weight columns are in CHW (flatten) order.  Returns
    ``(payload, row_stride_bytes, padded_in_values)``.
    """
    c, h, w = in_shape
    out_features, in_features = layer.weight.shape
    if in_features != c * h * w:
        raise ValueError(
            f"FC layer expects {in_features} inputs, producer provides {c * h * w}"
        )
    pixel_values = padded_run_length(c, in_buf_bits)
    padded_in = h * w * pixel_values
    relaid = np.zeros((out_features, padded_in), dtype=np.int64)
    for ci in range(c):
        for yi in range(h):
            for xi in range(w):
                src = ci * h * w + yi * w + xi
                dst = yi * (w * pixel_values) + xi * pixel_values + ci
                relaid[:, dst] = layer.weight[:, src]
    payload = pack_runs(relaid, layer.weight_bits)
    row_stride = padded_run_bytes(padded_in, layer.weight_bits)
    return payload, row_stride, padded_in


def _bias_image(layer: IntegerLayer) -> bytes:
    out = bytearray()
    for value in layer.bias:
        out.extend(int(value).to_bytes(4, "little", signed=True))
    return bytes(out)


def compile_network(
    inet: IntegerNetwork,
    use_sdotp: bool,
    num_classes: int = 4,
    compressed_isa: bool = True,
    code_overhead_bytes: int = 256,
) -> CompiledModel:
    """Compile an :class:`IntegerNetwork` into a runnable program image.

    Parameters
    ----------
    use_sdotp:
        Emit SDOTP SIMD inner loops (MAUPITI) instead of scalar MAC loops
        (vanilla IBEX).
    code_overhead_bytes:
        Fixed firmware overhead (startup, sensor readout, I/O) added to the
        generated kernel code when reporting the code size.
    """
    allocator = _Allocator()
    asm = Assembler()
    chunks: List[DataChunk] = []
    summaries: List[LayerSummary] = []

    c0, h0, w0 = inet.input_shape
    nodes = list(inet.graph)

    # Consumer padding for the input buffer comes from the first conv layer.
    def consumer_pad(index: int) -> int:
        for node in nodes[index:]:
            if isinstance(node, IntegerLayer):
                return node.padding[0] if node.kind == "conv" else 0
            if isinstance(node, PoolSpec):
                return 0
        return 0

    input_buffer = _make_buffer(allocator, h0, w0, c0, inet.input_bits, consumer_pad(0))
    current_buf = input_buffer
    current_shape = (c0, h0, w0)
    current_bits = inet.input_bits

    logits_address = 0
    layer_index = 0
    for node_idx, node in enumerate(nodes):
        if isinstance(node, PoolSpec):
            if node.kind == "flatten":
                # Flatten is a view over the producer buffer; nothing to emit.
                continue
            c, h, w = current_shape
            out_h = (h - node.kernel[0]) // node.stride[0] + 1
            out_w = (w - node.kernel[1]) // node.stride[1] + 1
            out_buf = _make_buffer(
                allocator, out_h, out_w, c, current_bits, consumer_pad(node_idx + 1)
            )
            emit_maxpool_layer(
                asm,
                PoolKernelConfig(
                    name=f"pool{layer_index}",
                    in_buf=current_buf,
                    out_buf=out_buf,
                    channels=c,
                    bits=current_bits,
                    kernel=node.kernel,
                    stride=node.stride,
                    out_h=out_h,
                    out_w=out_w,
                ),
            )
            summaries.append(
                LayerSummary(
                    name=f"pool{layer_index}",
                    kind="maxpool",
                    bits=current_bits,
                    out_bits=current_bits,
                    macs=0,
                    weight_bytes=0,
                    bias_bytes=0,
                    activation_bytes=out_buf.size_bytes,
                )
            )
            current_buf = out_buf
            current_shape = (c, out_h, out_w)
            layer_index += 1
            continue

        layer: IntegerLayer = node
        out_bits = layer.act_bits if layer.requantize else 32
        if layer.kind == "conv":
            c, h, w = current_shape
            c_out, c_in, kh, kw = layer.weight.shape
            out_h = (h + 2 * layer.padding[0] - kh) // layer.stride[0] + 1
            out_w = (w + 2 * layer.padding[1] - kw) // layer.stride[1] + 1

            weight_payload, tap_stride, oc_stride = _conv_weight_image(layer)
            weights_addr = allocator.alloc(len(weight_payload))
            chunks.append(DataChunk(f"conv{layer_index}_w", weights_addr, weight_payload))
            bias_payload = _bias_image(layer)
            bias_addr = allocator.alloc(len(bias_payload))
            chunks.append(DataChunk(f"conv{layer_index}_b", bias_addr, bias_payload))

            out_buf = _make_buffer(
                allocator, out_h, out_w, c_out, out_bits, consumer_pad(node_idx + 1)
            )
            emit_conv_layer(
                asm,
                ConvKernelConfig(
                    name=f"conv{layer_index}",
                    in_buf=current_buf,
                    out_buf=out_buf,
                    weights_address=weights_addr,
                    bias_address=bias_addr,
                    c_in=c_in,
                    c_out=c_out,
                    kernel=(kh, kw),
                    stride=layer.stride,
                    out_h=out_h,
                    out_w=out_w,
                    bits=layer.weight_bits,
                    out_bits=out_bits,
                    multiplier=layer.multiplier,
                    shift=layer.shift,
                    out_levels=layer.out_levels,
                    requantize=layer.requantize,
                    use_sdotp=use_sdotp,
                    weight_oc_stride=oc_stride,
                    weight_tap_stride=tap_stride,
                ),
            )
            summaries.append(
                LayerSummary(
                    name=f"conv{layer_index}",
                    kind="conv",
                    bits=layer.weight_bits,
                    out_bits=out_bits,
                    macs=layer.macs(h, w),
                    weight_bytes=len(weight_payload),
                    bias_bytes=len(bias_payload),
                    activation_bytes=out_buf.size_bytes,
                )
            )
            current_buf = out_buf
            current_shape = (c_out, out_h, out_w)
            current_bits = out_bits
        else:  # linear
            weight_payload, row_stride, padded_in = _fc_weight_image(
                layer, current_shape, current_buf.bits
            )
            weights_addr = allocator.alloc(len(weight_payload))
            chunks.append(DataChunk(f"fc{layer_index}_w", weights_addr, weight_payload))
            bias_payload = _bias_image(layer)
            bias_addr = allocator.alloc(len(bias_payload))
            chunks.append(DataChunk(f"fc{layer_index}_b", bias_addr, bias_payload))

            c_out = layer.weight.shape[0]
            if layer.requantize:
                out_buf = _make_buffer(allocator, 1, 1, c_out, out_bits, 0)
                out_address = out_buf.address
                activation_bytes = out_buf.size_bytes
            else:
                out_address = allocator.alloc(c_out * 4)
                logits_address = out_address
                out_buf = None
                activation_bytes = c_out * 4

            emit_fc_layer(
                asm,
                FcKernelConfig(
                    name=f"fc{layer_index}",
                    in_address=current_buf.address,
                    in_values=padded_in,
                    out_buf_address=out_address,
                    weights_address=weights_addr,
                    bias_address=bias_addr,
                    c_out=c_out,
                    bits=layer.weight_bits,
                    out_bits=out_bits,
                    multiplier=layer.multiplier,
                    shift=layer.shift,
                    out_levels=layer.out_levels,
                    requantize=layer.requantize,
                    use_sdotp=use_sdotp,
                    weight_row_stride=row_stride,
                ),
            )
            summaries.append(
                LayerSummary(
                    name=f"fc{layer_index}",
                    kind="linear",
                    bits=layer.weight_bits,
                    out_bits=out_bits,
                    macs=layer.macs(),
                    weight_bytes=len(weight_payload),
                    bias_bytes=len(bias_payload),
                    activation_bytes=activation_bytes,
                )
            )
            if layer.requantize:
                current_buf = out_buf
                current_shape = (c_out, 1, 1)
                current_bits = out_bits
        layer_index += 1

    if logits_address == 0:
        raise ValueError("the network has no final (non-requantized) classifier layer")

    result_address = allocator.alloc(4)
    emit_argmax(asm, "argmax", logits_address, num_classes, result_address)
    asm.emit("ebreak")

    program = asm.assemble()
    code_size = asm.code_size_bytes(compressed=compressed_isa) + code_overhead_bytes
    weights_size = sum(chunk.size for chunk in chunks)
    activations_size = allocator.used - weights_size

    return CompiledModel(
        program=program,
        code_size_bytes=code_size,
        data_size_bytes=allocator.used,
        weights_size_bytes=weights_size,
        activations_size_bytes=activations_size,
        data_chunks=chunks,
        input_buffer=input_buffer,
        logits_address=logits_address,
        result_address=result_address,
        num_classes=num_classes,
        input_scale=inet.input_scale,
        input_zero_point=inet.input_zero_point,
        use_sdotp=use_sdotp,
        layer_summaries=summaries,
        kernel_hints=list(asm.kernel_hints),
    )
