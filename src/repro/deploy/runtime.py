"""Inference runtime: run a compiled model on the simulated smart sensor.

The runtime plays the role of the boot/IO firmware that is not part of the
benchmarked kernels: it loads the program image and the constant data into
the on-chip memories, writes each (quantized) input frame into the input
activation buffer — as the sensor read-out DMA would — starts the core, and
reads back the predicted class.

It also provides :func:`verify_against_golden`, which checks that the ISA
simulation reproduces the numpy integer golden model bit-exactly.

This module is the low-level layer under the :mod:`repro.engine` façade;
application code should normally go through
``repro.compile(model, target="maupiti")`` instead of calling
:func:`run_frame` / :func:`run_frames` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..hw.core import ExecutionStats
from ..hw.platform import SmartSensorPlatform
from ..quant.integer import IntegerNetwork
from .program import CompiledModel


@dataclass
class InferenceResult:
    """Outcome of running one frame on the simulated platform."""

    prediction: int
    logits: np.ndarray
    stats: ExecutionStats

    @property
    def cycles(self) -> int:
        return self.stats.cycles


@dataclass
class BatchInferenceResult:
    """Aggregated results over a sequence of frames."""

    predictions: np.ndarray
    cycles_per_frame: np.ndarray
    results: List[InferenceResult] = field(default_factory=list)

    @property
    def mean_cycles(self) -> float:
        return float(self.cycles_per_frame.mean()) if self.cycles_per_frame.size else 0.0


def load_model(platform: SmartSensorPlatform, compiled: CompiledModel) -> None:
    """Load constant data (weights, biases) into the platform's data memory
    and check the image against the memory budget."""
    platform.check_fits(compiled.code_size_bytes, compiled.data_size_bytes)
    if compiled.use_sdotp and not platform.spec.supports_sdotp:
        raise ValueError(
            f"model compiled with SDOTP kernels cannot run on {platform.spec.name}"
        )
    for chunk in compiled.data_chunks:
        platform.memory.store_bytes(chunk.address, chunk.payload)


def quantize_frame(compiled: CompiledModel, frame: np.ndarray) -> np.ndarray:
    """Quantize one float frame to the signed input grid of the first layer."""
    bits_max = 2 ** (8 - 1) - 1
    bits_min = -(2 ** (8 - 1))
    q = np.round(np.asarray(frame, dtype=np.float64) / compiled.input_scale)
    return np.clip(q + compiled.input_zero_point, bits_min, bits_max).astype(np.int64)


def write_input(platform: SmartSensorPlatform, compiled: CompiledModel, frame: np.ndarray) -> None:
    """Write a quantized input frame into the (spatially padded) input buffer.

    The buffer is laid out as ``[row][pixel][padded channel run]``; the whole
    payload is built as one ``(H, W, pixel_stride)`` uint8 array — zero-point
    fill for the pad ring, frame values scattered into the interior — and
    stored with a single DMA-like write.
    """
    buf = compiled.input_buffer
    frame_int = quantize_frame(compiled, frame)
    if frame_int.ndim == 3:  # (C, H, W)
        c, h, w = frame_int.shape
    else:
        raise ValueError(f"expected a (C, H, W) frame, got shape {frame_int.shape}")
    if c != buf.channels or h + 2 * buf.pad != buf.height or w + 2 * buf.pad != buf.width:
        raise ValueError("frame shape does not match the compiled input buffer")
    if buf.bits != 8:
        raise ValueError(f"the input buffer stores {buf.bits}-bit values; only 8-bit input is supported")
    if buf.row_stride != buf.width * buf.pixel_stride:
        raise ValueError(
            "input buffers with row-alignment padding are not supported: "
            f"row_stride {buf.row_stride} != width*pixel_stride {buf.width * buf.pixel_stride}"
        )

    zp = compiled.input_zero_point & 0xFF
    payload = np.zeros((buf.height, buf.width, buf.pixel_stride), dtype=np.uint8)
    payload[:, :, :c] = zp  # pad ring; the run's alignment padding stays 0
    payload[buf.pad : buf.pad + h, buf.pad : buf.pad + w, :c] = (
        (frame_int & 0xFF).astype(np.uint8).transpose(1, 2, 0)
    )
    platform.memory.store_bytes(buf.address, payload.tobytes())


def run_frame(
    platform: SmartSensorPlatform, compiled: CompiledModel, frame: np.ndarray
) -> InferenceResult:
    """Run a single frame through the compiled model on the simulator."""
    write_input(platform, compiled, frame)
    stats = platform.run_program(compiled.program)
    prediction = platform.memory.load_word(compiled.result_address)
    logits = np.array(
        [
            platform.memory.load_word(compiled.logits_address + 4 * i)
            for i in range(compiled.num_classes)
        ],
        dtype=np.int64,
    )
    return InferenceResult(prediction=int(prediction), logits=logits, stats=stats)


def run_frames(
    platform: SmartSensorPlatform,
    compiled: CompiledModel,
    frames: np.ndarray,
    keep_results: bool = False,
) -> BatchInferenceResult:
    """Run a batch of frames; the model is loaded once, frames run sequentially."""
    load_model(platform, compiled)
    predictions = []
    cycles = []
    results: List[InferenceResult] = []
    for frame in frames:
        result = run_frame(platform, compiled, frame)
        predictions.append(result.prediction)
        cycles.append(result.cycles)
        if keep_results:
            results.append(result)
    return BatchInferenceResult(
        predictions=np.asarray(predictions, dtype=np.int64),
        cycles_per_frame=np.asarray(cycles, dtype=np.int64),
        results=results,
    )


def verify_against_golden(
    platform: SmartSensorPlatform,
    compiled: CompiledModel,
    golden: IntegerNetwork,
    frames: np.ndarray,
    check_logits: bool = True,
) -> BatchInferenceResult:
    """Run frames on the ISA simulator and assert bit-exact agreement with the
    numpy integer golden model (logits and predictions)."""
    load_model(platform, compiled)
    batch_predictions = []
    batch_cycles = []
    for index, frame in enumerate(frames):
        result = run_frame(platform, compiled, frame)
        golden_logits = golden.forward(frame[None])[0]
        if check_logits and not np.array_equal(result.logits, golden_logits):
            raise AssertionError(
                f"frame {index}: simulator logits {result.logits.tolist()} differ "
                f"from golden {golden_logits.tolist()}"
            )
        golden_pred = int(np.argmax(golden_logits))
        if result.prediction != golden_pred:
            raise AssertionError(
                f"frame {index}: simulator predicted {result.prediction}, "
                f"golden predicted {golden_pred}"
            )
        batch_predictions.append(result.prediction)
        batch_cycles.append(result.cycles)
    return BatchInferenceResult(
        predictions=np.asarray(batch_predictions, dtype=np.int64),
        cycles_per_frame=np.asarray(batch_cycles, dtype=np.int64),
    )
