"""Inference runtime: run a compiled model on the simulated smart sensor.

The runtime plays the role of the boot/IO firmware that is not part of the
benchmarked kernels: it loads the program image and the constant data into
the on-chip memories, writes each (quantized) input frame into the input
activation buffer — as the sensor read-out DMA would — starts the core, and
reads back the predicted class.

It also provides :func:`simulate_batch` — whole-split simulation that
amortizes model load, input quantization/packing and (in ``fast`` mode)
trace compilation across frames — and :func:`verify_against_golden`, which
checks in one batched call that the ISA simulation reproduces the numpy
integer golden model bit-exactly.

This module is the low-level layer under the :mod:`repro.engine` façade;
application code should normally go through
``repro.compile(model, target="maupiti")`` instead of calling
:func:`run_frame` / :func:`simulate_batch` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..hw.core import ExecutionStats
from ..hw.platform import SmartSensorPlatform
from ..quant.integer import IntegerNetwork
from .program import CompiledModel


@dataclass
class InferenceResult:
    """Outcome of running one frame on the simulated platform."""

    prediction: int
    logits: np.ndarray
    stats: ExecutionStats

    @property
    def cycles(self) -> int:
        return self.stats.cycles


@dataclass
class BatchInferenceResult:
    """Aggregated results over a sequence of frames."""

    predictions: np.ndarray
    cycles_per_frame: np.ndarray
    results: List[InferenceResult] = field(default_factory=list)
    logits: Optional[np.ndarray] = None  # (N, num_classes) INT32-valued

    @property
    def mean_cycles(self) -> float:
        return float(self.cycles_per_frame.mean()) if self.cycles_per_frame.size else 0.0


def load_model(platform: SmartSensorPlatform, compiled: CompiledModel) -> None:
    """Load constant data (weights, biases) into the platform's data memory
    and check the image against the memory budget."""
    platform.check_fits(compiled.code_size_bytes, compiled.data_size_bytes)
    if compiled.use_sdotp and not platform.spec.supports_sdotp:
        raise ValueError(
            f"model compiled with SDOTP kernels cannot run on {platform.spec.name}"
        )
    for chunk in compiled.data_chunks:
        platform.memory.store_bytes(chunk.address, chunk.payload)


def quantize_frame(compiled: CompiledModel, frame: np.ndarray) -> np.ndarray:
    """Quantize one float frame to the signed input grid of the first layer."""
    bits_max = 2 ** (8 - 1) - 1
    bits_min = -(2 ** (8 - 1))
    q = np.round(np.asarray(frame, dtype=np.float64) / compiled.input_scale)
    return np.clip(q + compiled.input_zero_point, bits_min, bits_max).astype(np.int64)


def pack_input_frames(compiled: CompiledModel, frames: np.ndarray) -> np.ndarray:
    """Quantize and pack a ``(N, C, H, W)`` batch into input-buffer payloads.

    The input buffer is laid out as ``[row][pixel][padded channel run]``;
    each payload is built as one ``(H, W, pixel_stride)`` uint8 array —
    zero-point fill for the pad ring, frame values scattered into the
    interior.  Packing the whole batch in one numpy pass is what
    :func:`simulate_batch` amortizes across frames; the bytes produced are
    identical to per-frame :func:`write_input` calls.

    Returns a ``(N, buf.size_bytes)`` uint8 array.
    """
    buf = compiled.input_buffer
    frames = np.asarray(frames)
    if frames.ndim != 4:
        raise ValueError(f"expected a (N, C, H, W) batch, got shape {frames.shape}")
    n, c, h, w = frames.shape
    if c != buf.channels or h + 2 * buf.pad != buf.height or w + 2 * buf.pad != buf.width:
        raise ValueError("frame shape does not match the compiled input buffer")
    if buf.bits != 8:
        raise ValueError(f"the input buffer stores {buf.bits}-bit values; only 8-bit input is supported")
    if buf.row_stride != buf.width * buf.pixel_stride:
        raise ValueError(
            "input buffers with row-alignment padding are not supported: "
            f"row_stride {buf.row_stride} != width*pixel_stride {buf.width * buf.pixel_stride}"
        )

    frames_int = quantize_frame(compiled, frames)
    zp = compiled.input_zero_point & 0xFF
    payload = np.zeros((n, buf.height, buf.width, buf.pixel_stride), dtype=np.uint8)
    payload[:, :, :, :c] = zp  # pad ring; the run's alignment padding stays 0
    payload[:, buf.pad : buf.pad + h, buf.pad : buf.pad + w, :c] = (
        (frames_int & 0xFF).astype(np.uint8).transpose(0, 2, 3, 1)
    )
    return payload.reshape(n, buf.size_bytes)


def write_input(platform: SmartSensorPlatform, compiled: CompiledModel, frame: np.ndarray) -> None:
    """Write one quantized input frame into the (spatially padded) input
    buffer with a single DMA-like write."""
    frame = np.asarray(frame)
    if frame.ndim != 3:  # (C, H, W)
        raise ValueError(f"expected a (C, H, W) frame, got shape {frame.shape}")
    payload = pack_input_frames(compiled, frame[None])[0]
    platform.memory.store_bytes(compiled.input_buffer.address, payload.tobytes())


def _read_outputs_from(memory, compiled: CompiledModel) -> tuple:
    """Read back (prediction, logits) from a memory after a program run."""
    prediction = int(memory.load_word(compiled.result_address))
    raw = memory.load_bytes(compiled.logits_address, 4 * compiled.num_classes)
    logits = np.frombuffer(raw, dtype="<i4").astype(np.int64)
    return prediction, logits


def _read_outputs(
    platform: SmartSensorPlatform, compiled: CompiledModel
) -> tuple:
    """Read back (prediction, logits) after a program run."""
    return _read_outputs_from(platform.memory, compiled)


def run_frame(
    platform: SmartSensorPlatform, compiled: CompiledModel, frame: np.ndarray
) -> InferenceResult:
    """Run a single frame through the compiled model on the simulator."""
    write_input(platform, compiled, frame)
    stats = platform.run_program(compiled.program)
    prediction, logits = _read_outputs(platform, compiled)
    return InferenceResult(prediction=prediction, logits=logits, stats=stats)


def simulate_batch(
    platform: SmartSensorPlatform,
    compiled: CompiledModel,
    frames: np.ndarray,
    keep_results: bool = False,
) -> BatchInferenceResult:
    """Simulate a whole ``(N, C, H, W)`` batch of frames in one call.

    Everything frame-independent is amortized across the batch: the model
    image is loaded once, every frame is quantized and packed into its
    input-buffer payload in one vectorized pass
    (:func:`pack_input_frames`), and — on a ``sim_mode="fast"`` platform —
    the program decode/trace compilation happens once and is reused for
    every frame.  Results are identical to running the frames one by one.
    """
    frames = np.asarray(frames)
    load_model(platform, compiled)
    if frames.size == 0:  # empty splits are fine, whatever their shape
        return BatchInferenceResult(
            predictions=np.empty(0, dtype=np.int64),
            cycles_per_frame=np.empty(0, dtype=np.int64),
            logits=np.empty((0, compiled.num_classes), dtype=np.int64),
        )
    payloads = pack_input_frames(compiled, frames)
    if platform.sim_mode == "jit" and len(payloads) > 1:
        # Cross-frame batched walk: every frame runs against its own memory
        # clone, so a failed attempt leaves the platform untouched and the
        # sequential loop below reproduces the exact result (or fault).
        try:
            return _simulate_batch_jit(platform, compiled, payloads, keep_results)
        except Exception:
            pass
    buf_address = compiled.input_buffer.address
    store_bytes = platform.memory.store_bytes
    predictions: List[int] = []
    cycles: List[int] = []
    logits_rows: List[np.ndarray] = []
    results: List[InferenceResult] = []
    for payload in payloads:
        store_bytes(buf_address, payload.tobytes())
        stats = platform.run_program(compiled.program)
        prediction, logits = _read_outputs(platform, compiled)
        predictions.append(prediction)
        cycles.append(stats.cycles)
        logits_rows.append(logits)
        if keep_results:
            results.append(
                InferenceResult(prediction=prediction, logits=logits, stats=stats)
            )
    return BatchInferenceResult(
        predictions=np.asarray(predictions, dtype=np.int64),
        cycles_per_frame=np.asarray(cycles, dtype=np.int64),
        results=results,
        logits=np.stack(logits_rows)
        if logits_rows
        else np.empty((0, compiled.num_classes), dtype=np.int64),
    )


def _simulate_batch_jit(
    platform: SmartSensorPlatform,
    compiled: CompiledModel,
    payloads: np.ndarray,
    keep_results: bool,
) -> BatchInferenceResult:
    """Batched JIT path of :func:`simulate_batch`.

    One lockstep trace walk drives every frame (see
    :mod:`repro.hw.sim.batch`), batching kernel calls into multi-frame numpy
    ops.  The platform ends in the same architectural state as after a
    sequential run: the last frame's memory, registers, pc and stats.
    Raises on any divergence; the caller falls back to the sequential loop.
    """
    from ..hw.sim.batch import run_batch

    core = platform.core
    outcomes = run_batch(
        platform.memory,
        compiled.program,
        [p.tobytes() for p in payloads],
        compiled.input_buffer.address,
        core.cycle_model,
        core.enable_sdotp,
        core.max_instructions,
    )
    predictions: List[int] = []
    cycles: List[int] = []
    logits_rows: List[np.ndarray] = []
    results: List[InferenceResult] = []
    for outcome in outcomes:
        prediction, logits = _read_outputs_from(outcome.memory, compiled)
        predictions.append(prediction)
        cycles.append(outcome.stats.cycles)
        logits_rows.append(logits)
        if keep_results:
            results.append(
                InferenceResult(
                    prediction=prediction, logits=logits, stats=outcome.stats
                )
            )
    last = outcomes[-1]
    platform.memory.copy_from(last.memory)
    core.registers = list(last.regs)
    core.pc = last.final_pc
    core.stats = last.stats
    core.halted = True
    return BatchInferenceResult(
        predictions=np.asarray(predictions, dtype=np.int64),
        cycles_per_frame=np.asarray(cycles, dtype=np.int64),
        results=results,
        logits=np.stack(logits_rows),
    )


def run_frames(
    platform: SmartSensorPlatform,
    compiled: CompiledModel,
    frames: np.ndarray,
    keep_results: bool = False,
) -> BatchInferenceResult:
    """Run a batch of frames; alias of :func:`simulate_batch`."""
    return simulate_batch(platform, compiled, frames, keep_results=keep_results)


def verify_against_golden(
    platform: SmartSensorPlatform,
    compiled: CompiledModel,
    golden: IntegerNetwork,
    frames: np.ndarray,
    check_logits: bool = True,
) -> BatchInferenceResult:
    """Run frames on the ISA simulator and assert bit-exact agreement with the
    numpy integer golden model (logits and predictions).

    The whole split is simulated in one :func:`simulate_batch` call and the
    golden model runs one vectorized forward pass over the batch, so the
    verification costs one simulation per frame and a single numpy forward.
    """
    frames = np.asarray(frames)
    batch = simulate_batch(platform, compiled, frames)
    if frames.size == 0:
        return batch
    golden_logits = golden.forward(frames)
    golden_preds = np.argmax(golden_logits, axis=1)
    if check_logits and not np.array_equal(batch.logits, golden_logits):
        index = int(
            np.nonzero(~np.all(batch.logits == golden_logits, axis=1))[0][0]
        )
        raise AssertionError(
            f"frame {index}: simulator logits {batch.logits[index].tolist()} "
            f"differ from golden {golden_logits[index].tolist()}"
        )
    if not np.array_equal(batch.predictions, golden_preds):
        index = int(np.nonzero(batch.predictions != golden_preds)[0][0])
        raise AssertionError(
            f"frame {index}: simulator predicted {int(batch.predictions[index])}, "
            f"golden predicted {int(golden_preds[index])}"
        )
    return batch
