"""Zero-copy shared-memory handoff of numpy arrays to worker processes.

The dominant constant factor of the PR-3 process pool was payload pickling:
every task unit shipped the full train/val arrays (~MBs) through the pipe,
once per unit.  This module removes that cost by placing each large array
into a :mod:`multiprocessing.shared_memory` block **once per flow run** and
shipping only a tiny :class:`ShmDescriptor` (name, dtype, shape) per task.

The mechanism is transparent to task functions:

* :class:`SharedArray` is an ``np.ndarray`` subclass whose instances carry a
  descriptor of the block they view.  Pickling such an instance serializes
  the descriptor instead of the bytes; unpickling in a worker attaches the
  block (cached per process) and reconstructs a zero-copy, **read-only**
  view.  Views or copies derived from a :class:`SharedArray` do not inherit
  the descriptor and pickle normally, so nothing ever aliases memory it does
  not actually span.
* :class:`ShmArena` owns the blocks on the creating side: it copies a source
  array into shared memory once (idempotently, keyed by source identity),
  and :meth:`ShmArena.close` closes **and unlinks** every block, on normal
  exit and on exception alike — executors call it from ``close()``.

Because a shared view has the same dtype/shape/bytes as its source, cache
fingerprints (:func:`repro.parallel.fingerprint`) and training numerics are
bit-identical whether a dataset is shared or not.
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Dict, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class ShmDescriptor:
    """Everything a worker needs to reconstruct a view: (name, dtype, shape)."""

    name: str
    dtype: str
    shape: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        n = np.dtype(self.dtype).itemsize
        for dim in self.shape:
            n *= dim
        return int(n)


class SharedArray(np.ndarray):
    """An ndarray that pickles as a shared-memory descriptor.

    Only the exact full-block views created by :class:`ShmArena` (and by
    :func:`attach`) carry the ``_shm_desc`` attribute; slices, copies and
    arithmetic results are plain arrays again and fall back to ordinary
    by-value pickling.
    """

    def __reduce__(self):
        desc = getattr(self, "_shm_desc", None)
        if desc is not None:
            return (attach, (desc,))
        return super().__reduce__()

    def __reduce_ex__(self, protocol):
        if getattr(self, "_shm_desc", None) is not None:
            return self.__reduce__()
        return super().__reduce_ex__(protocol)


def _as_shared_view(shm: shared_memory.SharedMemory, desc: ShmDescriptor) -> SharedArray:
    base = np.ndarray(desc.shape, dtype=np.dtype(desc.dtype), buffer=shm.buf)
    base.flags.writeable = False  # shared across processes: corruption-proof
    view = base.view(SharedArray)
    view._shm_desc = desc
    return view


# Per-process cache of attached blocks.  The SharedMemory object must stay
# alive as long as any view into it exists, and attaching once per process
# (not once per task) keeps the per-payload cost at a dict lookup.
_ATTACHED: Dict[str, Tuple[shared_memory.SharedMemory, SharedArray]] = {}

# Retired creator-side mappings.  Unmapping a block (SharedMemory.close or
# its __del__) while numpy views into it are still referenced turns those
# views into dangling pointers — reading them is a segfault, not an
# exception.  Arenas therefore *unlink* on close (the name disappears from
# /dev/shm immediately and the kernel frees the pages once the last process
# unmaps, i.e. at exit) but park the mapping objects here so outstanding
# views stay valid.  The footprint is bounded by the arrays shared in this
# process — for the flow, one train + one test set per run.
_RETIRED: list = []


def attach(desc: ShmDescriptor) -> SharedArray:
    """Return the (read-only, zero-copy) view of a shared block.

    Used as the reconstructor when unpickling a :class:`SharedArray` in a
    worker; repeated payloads referencing the same block reuse one mapping.
    """
    cached = _ATTACHED.get(desc.name)
    if cached is not None:
        return cached[1]
    shm = shared_memory.SharedMemory(name=desc.name)
    view = _as_shared_view(shm, desc)
    _ATTACHED[desc.name] = (shm, view)
    return view


def attach_blocks(descriptors) -> None:
    """Warm-worker initializer: pre-attach every descriptor.

    Passed as the pool ``initializer`` so workers map the flow's datasets
    when they start rather than on their first task.  Blocks shared after
    the pool started are still attached lazily by :func:`attach`.
    """
    for desc in descriptors:
        try:
            attach(desc)
        except FileNotFoundError:
            # The block was unlinked between pool creation and worker start
            # (e.g. an executor closed concurrently); the payload that needs
            # it will fail with a precise error instead.
            pass


class ShmArena:
    """Creator-side registry of shared blocks with guaranteed unlink.

    ``share_array`` is idempotent per source array (keyed by identity, with
    a strong reference held so the key stays valid), so sharing the same
    dataset for the NAS sweep and again for the QAT sweep costs one copy.
    """

    def __init__(self) -> None:
        self._blocks: Dict[str, shared_memory.SharedMemory] = {}
        self._views: Dict[int, SharedArray] = {}
        self._sources: Dict[int, Any] = {}  # strong refs: keep ids stable

    def __len__(self) -> int:
        return len(self._blocks)

    @property
    def nbytes(self) -> int:
        return sum(shm.size for shm in self._blocks.values())

    def block_names(self) -> Tuple[str, ...]:
        return tuple(self._blocks)

    def descriptors(self) -> Tuple[ShmDescriptor, ...]:
        return tuple(view._shm_desc for view in self._views.values())

    def share_array(self, array: np.ndarray) -> np.ndarray:
        """Copy ``array`` into a shared block and return the shared view.

        Already-shared views pass through, empty arrays are returned as-is
        (a zero-byte block cannot be created), and repeated calls with the
        same source object reuse the existing block.
        """
        if isinstance(array, SharedArray) and getattr(array, "_shm_desc", None):
            return array
        key = id(array)
        if key in self._views:
            return self._views[key]
        src = np.ascontiguousarray(array)
        if src.nbytes == 0:
            return array
        shm = shared_memory.SharedMemory(create=True, size=src.nbytes)
        desc = ShmDescriptor(shm.name, src.dtype.str, tuple(src.shape))
        staging = np.ndarray(desc.shape, dtype=src.dtype, buffer=shm.buf)
        staging[...] = src
        view = _as_shared_view(shm, desc)
        self._blocks[shm.name] = shm
        self._views[key] = view
        self._sources[key] = array
        return view

    def share_dataset(self, dataset):
        """Return a shallow copy of ``dataset`` with shm-backed arrays.

        Works for any object exposing ``inputs`` / ``targets`` array
        attributes (:class:`repro.nn.ArrayDataset` and friends); the copy
        keeps the original class so isinstance checks, fingerprints and
        task-function code are unaffected.
        """
        import copy

        if dataset is None:
            return None
        inputs = self.share_array(dataset.inputs)
        targets = self.share_array(dataset.targets)
        if inputs is dataset.inputs and targets is dataset.targets:
            return dataset
        shared = copy.copy(dataset)
        shared.inputs = inputs
        shared.targets = targets
        return shared

    def close(self) -> None:
        """Unlink every block this arena created (idempotent).

        The names vanish from the system immediately (leak assertions in
        tests/CI check exactly this); the local mappings are retired, not
        unmapped, so views handed out earlier can never dangle.
        """
        blocks, self._blocks = self._blocks, {}
        self._views.clear()
        self._sources.clear()
        for shm in blocks.values():
            try:
                shm.unlink()
            except (FileNotFoundError, OSError):
                pass
            _RETIRED.append(shm)

    def __del__(self):  # best-effort safety net; executors close explicitly
        try:
            self.close()
        except Exception:
            pass


# --------------------------------------------------------------------- #
# SPSC byte ring: the serving pool's frame transport
# --------------------------------------------------------------------- #

_RING_HEADER = 16  # head: uint64 (producer-owned) | tail: uint64 (consumer-owned)


class RingFull(RuntimeError):
    """A non-blocking ring write found insufficient free space."""


def attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach a named block WITHOUT registering it with the resource tracker.

    Attaching by name normally registers the segment (bpo-38119), which is
    doubly wrong for pool workers: the spawned child shares the parent's
    tracker process, so (a) a worker exiting would unlink segments the
    parent still owns, and (b) sending ``unregister`` afterwards would
    delete the parent's own registration of the same name (the tracker
    dedups by name), making the parent's eventual ``unlink`` complain.
    Suppressing ``register`` for the duration of the attach sidesteps both;
    workers attach before starting any threads, so the brief monkeypatch
    cannot race.
    """
    try:
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
    except ImportError:  # pragma: no cover - tracker internals vary
        return shared_memory.SharedMemory(name=name)


class ShmRing:
    """Single-producer / single-consumer byte ring over one shared block.

    The ring stores *payload bytes only* — no in-band framing.  Producers
    get back a ``(pos, end)`` pair from :meth:`write` and ship it to the
    consumer out of band (the serving pool's pipe doorbell); the consumer
    maps the payload with :meth:`view` and hands the space back with
    :meth:`release`.  The only shared state is a pair of monotonically
    increasing 8-byte cursors at the head of the block: ``head`` is written
    only by the producer, ``tail`` only by the consumer, so aligned 8-byte
    stores make the ring lock-free between exactly one producer and one
    consumer (each side may serialize internally).

    Allocations are contiguous: a payload that does not fit before the end
    of the buffer skips the tail fragment (the skip is accounted in the
    absolute cursors, so ``release(end)`` frees it implicitly).

    .. warning:: **Memory-ordering assumption (x86-64 / TSO only).**  The
       cursors are plain ``struct.pack_into`` / ``unpack_from`` accesses
       with no atomics or fences.  That is sound on x86-64, where stores
       are not reordered with earlier loads (TSO) and the interpreter's
       ``memcpy`` of an aligned 8-byte slot is not observed torn in
       practice; the *payload* hand-off in the serving pool is additionally
       ordered by the pipe doorbell, whose send/recv syscalls imply full
       barriers.  On weakly-ordered architectures (ARM), however, the
       consumer's ``release`` store could become visible before its payload
       reads have completed, letting the producer overwrite bytes still
       being read.  Deployments on non-x86 hosts should route the tail
       hand-off through the pipe (ship ``end`` back as a control message
       and have the producer apply it) instead of trusting raw cursor
       loads for space reclamation.
    """

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool):
        self._shm = shm
        self._owner = owner
        self.capacity = shm.size - _RING_HEADER

    # ------------------------------------------------------------------ #
    @classmethod
    def create(cls, capacity: int) -> "ShmRing":
        if capacity < 1:
            raise ValueError("ring capacity must be positive")
        shm = shared_memory.SharedMemory(create=True, size=capacity + _RING_HEADER)
        shm.buf[:_RING_HEADER] = b"\x00" * _RING_HEADER
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        return cls(attach_untracked(name), owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    # ------------------------------------------------------------------ #
    @property
    def head(self) -> int:
        return struct.unpack_from("<Q", self._shm.buf, 0)[0]

    @property
    def tail(self) -> int:
        return struct.unpack_from("<Q", self._shm.buf, 8)[0]

    def occupancy(self) -> float:
        """Fraction of the ring currently in flight (0.0 .. 1.0).

        Clamped: an empty-ring write whose wraparound skip plus payload
        exceeds ``capacity`` (see :meth:`write`) briefly puts more than
        ``capacity`` absolute bytes in flight even though no physical byte
        is used twice.
        """
        return min(1.0, (self.head - self.tail) / self.capacity)

    # ------------------------------------------------------------------ #
    def write(
        self,
        data,
        timeout: Optional[float] = None,
        poll_s: float = 0.0002,
    ) -> Tuple[int, int]:
        """Copy ``data`` (bytes-like) into the ring; returns ``(pos, end)``.

        ``pos`` is the byte offset of the payload, ``end`` the absolute
        cursor the consumer must pass to :meth:`release` when done.  Blocks
        polling for space up to ``timeout`` seconds (``None``: forever);
        ``timeout=0`` is a non-blocking attempt.  Raises :class:`RingFull`
        on timeout and ``ValueError`` for payloads larger than the ring.
        """
        data = memoryview(data).cast("B")
        n = data.nbytes
        if n > self.capacity:
            raise ValueError(
                f"payload of {n} bytes exceeds ring capacity {self.capacity}"
            )
        deadline = None if timeout is None else time.monotonic() + timeout
        head = self.head
        while True:
            pos = head % self.capacity
            skip = self.capacity - pos if pos + n > self.capacity else 0
            if (head + skip + n) - self.tail <= self.capacity:
                break
            if skip and self.tail == head:
                # Ring empty: the skipped tail fragment holds no unconsumed
                # bytes, so a payload whose skip + n window exceeds capacity
                # (a near-maximal frame landing just past a wraparound) can
                # still be placed at the buffer start without clobbering
                # anything.  The absolute cursors advance by skip + n >
                # capacity, which is fine — release() frees by cursor, not
                # by byte position.  Without this clause such a write would
                # poll forever: the fit condition above can never hold.
                break
            if deadline is not None and time.monotonic() >= deadline:
                raise RingFull(
                    f"ring {self.name} full ({self.head - self.tail}/"
                    f"{self.capacity} bytes in flight, need {skip + n})"
                )
            time.sleep(poll_s)
        start = head + skip
        pos = start % self.capacity
        offset = _RING_HEADER + pos
        self._shm.buf[offset : offset + n] = data
        struct.pack_into("<Q", self._shm.buf, 0, start + n)
        return pos, start + n

    # ------------------------------------------------------------------ #
    def view(self, pos: int, nbytes: int) -> memoryview:
        """Zero-copy view of a payload; drop all references before close."""
        offset = _RING_HEADER + pos
        return self._shm.buf[offset : offset + nbytes]

    def release(self, end: int) -> None:
        """Hand ``[tail, end)`` back to the producer (must be in order).

        Callers must drop every :meth:`view` into the released span *before*
        calling this; see the class docstring for the x86-TSO ordering
        assumption behind the raw cursor store."""
        struct.pack_into("<Q", self._shm.buf, 8, end)

    # ------------------------------------------------------------------ #
    def close(self, unlink: Optional[bool] = None) -> None:
        """Unmap the ring; the owning side also unlinks the block."""
        unlink = self._owner if unlink is None else unlink
        if unlink:
            try:
                self._shm.unlink()
            except (FileNotFoundError, OSError):
                pass
        try:
            self._shm.close()
        except BufferError:
            # Views are still outstanding; retire the mapping instead of
            # segfaulting them (same policy as ShmArena.close).
            _RETIRED.append(self._shm)
