"""Zero-copy shared-memory handoff of numpy arrays to worker processes.

The dominant constant factor of the PR-3 process pool was payload pickling:
every task unit shipped the full train/val arrays (~MBs) through the pipe,
once per unit.  This module removes that cost by placing each large array
into a :mod:`multiprocessing.shared_memory` block **once per flow run** and
shipping only a tiny :class:`ShmDescriptor` (name, dtype, shape) per task.

The mechanism is transparent to task functions:

* :class:`SharedArray` is an ``np.ndarray`` subclass whose instances carry a
  descriptor of the block they view.  Pickling such an instance serializes
  the descriptor instead of the bytes; unpickling in a worker attaches the
  block (cached per process) and reconstructs a zero-copy, **read-only**
  view.  Views or copies derived from a :class:`SharedArray` do not inherit
  the descriptor and pickle normally, so nothing ever aliases memory it does
  not actually span.
* :class:`ShmArena` owns the blocks on the creating side: it copies a source
  array into shared memory once (idempotently, keyed by source identity),
  and :meth:`ShmArena.close` closes **and unlinks** every block, on normal
  exit and on exception alike — executors call it from ``close()``.

Because a shared view has the same dtype/shape/bytes as its source, cache
fingerprints (:func:`repro.parallel.fingerprint`) and training numerics are
bit-identical whether a dataset is shared or not.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Dict, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class ShmDescriptor:
    """Everything a worker needs to reconstruct a view: (name, dtype, shape)."""

    name: str
    dtype: str
    shape: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        n = np.dtype(self.dtype).itemsize
        for dim in self.shape:
            n *= dim
        return int(n)


class SharedArray(np.ndarray):
    """An ndarray that pickles as a shared-memory descriptor.

    Only the exact full-block views created by :class:`ShmArena` (and by
    :func:`attach`) carry the ``_shm_desc`` attribute; slices, copies and
    arithmetic results are plain arrays again and fall back to ordinary
    by-value pickling.
    """

    def __reduce__(self):
        desc = getattr(self, "_shm_desc", None)
        if desc is not None:
            return (attach, (desc,))
        return super().__reduce__()

    def __reduce_ex__(self, protocol):
        if getattr(self, "_shm_desc", None) is not None:
            return self.__reduce__()
        return super().__reduce_ex__(protocol)


def _as_shared_view(shm: shared_memory.SharedMemory, desc: ShmDescriptor) -> SharedArray:
    base = np.ndarray(desc.shape, dtype=np.dtype(desc.dtype), buffer=shm.buf)
    base.flags.writeable = False  # shared across processes: corruption-proof
    view = base.view(SharedArray)
    view._shm_desc = desc
    return view


# Per-process cache of attached blocks.  The SharedMemory object must stay
# alive as long as any view into it exists, and attaching once per process
# (not once per task) keeps the per-payload cost at a dict lookup.
_ATTACHED: Dict[str, Tuple[shared_memory.SharedMemory, SharedArray]] = {}

# Retired creator-side mappings.  Unmapping a block (SharedMemory.close or
# its __del__) while numpy views into it are still referenced turns those
# views into dangling pointers — reading them is a segfault, not an
# exception.  Arenas therefore *unlink* on close (the name disappears from
# /dev/shm immediately and the kernel frees the pages once the last process
# unmaps, i.e. at exit) but park the mapping objects here so outstanding
# views stay valid.  The footprint is bounded by the arrays shared in this
# process — for the flow, one train + one test set per run.
_RETIRED: list = []


def attach(desc: ShmDescriptor) -> SharedArray:
    """Return the (read-only, zero-copy) view of a shared block.

    Used as the reconstructor when unpickling a :class:`SharedArray` in a
    worker; repeated payloads referencing the same block reuse one mapping.
    """
    cached = _ATTACHED.get(desc.name)
    if cached is not None:
        return cached[1]
    shm = shared_memory.SharedMemory(name=desc.name)
    view = _as_shared_view(shm, desc)
    _ATTACHED[desc.name] = (shm, view)
    return view


def attach_blocks(descriptors) -> None:
    """Warm-worker initializer: pre-attach every descriptor.

    Passed as the pool ``initializer`` so workers map the flow's datasets
    when they start rather than on their first task.  Blocks shared after
    the pool started are still attached lazily by :func:`attach`.
    """
    for desc in descriptors:
        try:
            attach(desc)
        except FileNotFoundError:
            # The block was unlinked between pool creation and worker start
            # (e.g. an executor closed concurrently); the payload that needs
            # it will fail with a precise error instead.
            pass


class ShmArena:
    """Creator-side registry of shared blocks with guaranteed unlink.

    ``share_array`` is idempotent per source array (keyed by identity, with
    a strong reference held so the key stays valid), so sharing the same
    dataset for the NAS sweep and again for the QAT sweep costs one copy.
    """

    def __init__(self) -> None:
        self._blocks: Dict[str, shared_memory.SharedMemory] = {}
        self._views: Dict[int, SharedArray] = {}
        self._sources: Dict[int, Any] = {}  # strong refs: keep ids stable

    def __len__(self) -> int:
        return len(self._blocks)

    @property
    def nbytes(self) -> int:
        return sum(shm.size for shm in self._blocks.values())

    def block_names(self) -> Tuple[str, ...]:
        return tuple(self._blocks)

    def descriptors(self) -> Tuple[ShmDescriptor, ...]:
        return tuple(view._shm_desc for view in self._views.values())

    def share_array(self, array: np.ndarray) -> np.ndarray:
        """Copy ``array`` into a shared block and return the shared view.

        Already-shared views pass through, empty arrays are returned as-is
        (a zero-byte block cannot be created), and repeated calls with the
        same source object reuse the existing block.
        """
        if isinstance(array, SharedArray) and getattr(array, "_shm_desc", None):
            return array
        key = id(array)
        if key in self._views:
            return self._views[key]
        src = np.ascontiguousarray(array)
        if src.nbytes == 0:
            return array
        shm = shared_memory.SharedMemory(create=True, size=src.nbytes)
        desc = ShmDescriptor(shm.name, src.dtype.str, tuple(src.shape))
        staging = np.ndarray(desc.shape, dtype=src.dtype, buffer=shm.buf)
        staging[...] = src
        view = _as_shared_view(shm, desc)
        self._blocks[shm.name] = shm
        self._views[key] = view
        self._sources[key] = array
        return view

    def share_dataset(self, dataset):
        """Return a shallow copy of ``dataset`` with shm-backed arrays.

        Works for any object exposing ``inputs`` / ``targets`` array
        attributes (:class:`repro.nn.ArrayDataset` and friends); the copy
        keeps the original class so isinstance checks, fingerprints and
        task-function code are unaffected.
        """
        import copy

        if dataset is None:
            return None
        inputs = self.share_array(dataset.inputs)
        targets = self.share_array(dataset.targets)
        if inputs is dataset.inputs and targets is dataset.targets:
            return dataset
        shared = copy.copy(dataset)
        shared.inputs = inputs
        shared.targets = targets
        return shared

    def close(self) -> None:
        """Unlink every block this arena created (idempotent).

        The names vanish from the system immediately (leak assertions in
        tests/CI check exactly this); the local mappings are retired, not
        unmapped, so views handed out earlier can never dangle.
        """
        blocks, self._blocks = self._blocks, {}
        self._views.clear()
        self._sources.clear()
        for shm in blocks.values():
            try:
                shm.unlink()
            except (FileNotFoundError, OSError):
                pass
            _RETIRED.append(shm)

    def __del__(self):  # best-effort safety net; executors close explicitly
        try:
            self.close()
        except Exception:
            pass
