"""Pluggable task executors for the optimization flow.

The flow's trainable units (per-lambda PIT searches, per-scheme QAT runs,
per-target deployments) are embarrassingly parallel: each unit derives its
own RNG stream from an explicitly spawned :class:`numpy.random.SeedSequence`
child and shares nothing with its siblings.  Executors only decide *where*
the units run:

* :class:`SerialExecutor` — in-process ``for`` loop (the reference),
* :class:`ThreadExecutor` — a thread pool; cheap to start and zero-copy by
  construction, the right choice for numpy-heavy units that release the GIL
  (batched simulator deploys, vectorized golden forwards),
* :class:`ProcessExecutor` — a **persistent** ``ProcessPoolExecutor`` worker
  pool reused across ``run()`` calls, with shared-memory dataset handoff
  (see :mod:`repro.parallel.shm`) so payloads stay kilobyte-sized.

Because every unit is seeded independently and results are gathered in
submission order, all executors produce **bit-identical** outputs for any
worker count (enforced by ``tests/test_parallel_flow.py``).

Executors are context managers; ``close()`` is idempotent, releases the
pool and (for the process executor) unlinks every shared-memory block.  A
closed executor transparently restarts its pool if it is used again.

Task functions must be module-level (picklable) and their payloads must
survive a pickle round-trip; see the README's troubleshooting note for the
usual offenders (lambdas, locally-defined cost models, open file handles).
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from .cache import ResultCache
from .shm import ShmArena, attach_blocks

EXECUTORS = ("serial", "thread", "process")


class _ExecutorBase:
    """Shared lifecycle / shm interface; serial and thread executors run in
    the parent address space, so sharing is the identity function."""

    name = "base"

    def share_array(self, array):
        return array

    def share_dataset(self, dataset):
        return dataset

    def close(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class SerialExecutor(_ExecutorBase):
    """Run every task unit in the calling process, in submission order."""

    name = "serial"

    def run(self, fn: Callable[[Any], Any], payloads: Sequence[Any]) -> List[Any]:
        return [fn(payload) for payload in payloads]


class ThreadExecutor(_ExecutorBase):
    """Run task units on a persistent thread pool.

    Threads see the parent's memory directly — no pickling, no copies — so
    this executor pays essentially zero dispatch cost.  It only *scales*
    on code that releases the GIL (large numpy kernels: batched simulator
    runs, vectorized golden forwards); pure-Python-heavy units serialize on
    the GIL and should use :class:`ProcessExecutor` instead.
    """

    name = "thread"

    def __init__(self, max_workers: Optional[int] = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers or os.cpu_count() or 1
        self._pool: Optional[ThreadPoolExecutor] = None

    def run(self, fn: Callable[[Any], Any], payloads: Sequence[Any]) -> List[Any]:
        payloads = list(payloads)
        if not payloads:
            return []
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="repro-task"
            )
        return list(self._pool.map(fn, payloads))

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


class ProcessExecutor(_ExecutorBase):
    """Run task units on a persistent ``ProcessPoolExecutor`` worker pool.

    ``max_workers`` defaults to the machine's CPU count.  Results come back
    in submission order regardless of completion order, so swapping this in
    for :class:`SerialExecutor` never reorders (or otherwise changes) the
    output.  Worker exceptions propagate to the caller.

    Two constant factors distinguish this from a throwaway pool-per-call:

    * the pool is started lazily on the first ``run()`` and **reused** by
      every later call (one fork cost per flow run, not per stage), with
      datasets registered via :meth:`share_dataset` pre-attached in each
      worker through the pool initializer;
    * large arrays travel as shared-memory descriptors, not pickled bytes
      (:mod:`repro.parallel.shm`), so a task payload costs kilobytes.

    Short task lists are chunked (``chunksize`` heuristic) to amortize the
    per-message IPC overhead.  A crashed worker (``BrokenProcessPool``)
    surfaces as a :class:`RuntimeError` naming the executor, and the broken
    pool is discarded so the executor stays usable.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers or os.cpu_count() or 1
        self._pool: Optional[ProcessPoolExecutor] = None
        self._arena = ShmArena()

    # ------------------------------------------------------------------ #
    # shared-memory dataset handoff
    # ------------------------------------------------------------------ #
    def share_array(self, array):
        """Place ``array`` in shared memory (idempotent); see ShmArena."""
        return self._arena.share_array(array)

    def share_dataset(self, dataset):
        """Share a dataset's arrays once; payloads then pickle descriptors."""
        return self._arena.share_dataset(dataset)

    @property
    def shared_block_names(self):
        """Names of the live shm blocks (for leak assertions in tests/CI)."""
        return self._arena.block_names()

    # ------------------------------------------------------------------ #
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=attach_blocks,
                initargs=(self._arena.descriptors(),),
            )
        return self._pool

    @staticmethod
    def _chunksize(num_tasks: int, workers: int) -> int:
        # Aim for ~4 chunks per worker: enough slack for load balancing on
        # uneven task durations, few enough messages that short task lists
        # are not dominated by IPC round-trips.
        return max(1, num_tasks // (workers * 4))

    def run(self, fn: Callable[[Any], Any], payloads: Sequence[Any]) -> List[Any]:
        payloads = list(payloads)
        if not payloads:
            return []
        pool = self._ensure_pool()
        chunksize = self._chunksize(len(payloads), self.max_workers)
        try:
            return list(pool.map(fn, payloads, chunksize=chunksize))
        except BrokenProcessPool as exc:
            self._discard_pool()
            raise RuntimeError(
                "a 'process' executor worker died before finishing its task "
                "(out-of-memory killer, os._exit or a segfaulting extension "
                "are the usual causes); the pool has been discarded and the "
                "executor remains usable — executor='serial' reproduces the "
                "failing unit in-process for debugging"
            ) from exc

    def _discard_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut the pool down and unlink all shared blocks (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        self._arena.close()

    def __del__(self):  # best-effort: explicit close() is the contract
        try:
            self.close()
        except Exception:
            pass


ExecutorLike = Union[str, SerialExecutor, ThreadExecutor, ProcessExecutor]


def get_executor(
    executor: Optional[ExecutorLike] = None, max_workers: Optional[int] = None
) -> Union[SerialExecutor, ThreadExecutor, ProcessExecutor]:
    """Resolve an executor name (or pass an instance through).

    ``executor`` may be ``"serial"``, ``"thread"``, ``"process"``, ``None``
    (serial) or an object already exposing ``run(fn, payloads)``.  Passing
    ``max_workers`` together with an instance warns: the instance's own
    worker count always wins.
    """
    if executor is None:
        return SerialExecutor()
    if not isinstance(executor, str):
        if not callable(getattr(executor, "run", None)):
            raise TypeError(
                f"executor must be a name or expose run(fn, payloads); got "
                f"{type(executor).__name__}"
            )
        if max_workers is not None:
            warnings.warn(
                f"max_workers={max_workers} is ignored for an executor "
                f"instance (it keeps its own worker count of "
                f"{getattr(executor, 'max_workers', 'n/a')}); pass the name "
                f"{getattr(executor, 'name', 'process')!r} instead to build "
                "a pool of that size",
                UserWarning,
                stacklevel=2,
            )
        return executor
    name = executor.lower()
    if name == "serial":
        return SerialExecutor()
    if name == "thread":
        return ThreadExecutor(max_workers=max_workers)
    if name == "process":
        return ProcessExecutor(max_workers=max_workers)
    raise ValueError(
        f"unknown executor {executor!r}; available: {', '.join(EXECUTORS)}"
    )


def executor_is_owned(executor: Optional[ExecutorLike]) -> bool:
    """True when the caller resolves ``executor`` itself and must close it.

    Entry points that accept ``executor="process"``-style names construct
    the pool on behalf of the caller and are responsible for closing it
    (releasing workers and unlinking shared memory) before returning; an
    instance belongs to whoever created it.
    """
    return executor is None or isinstance(executor, str)


_MISSING = object()


def run_tasks(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    executor: Optional[ExecutorLike] = None,
    max_workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    keys: Optional[Sequence[str]] = None,
) -> List[Any]:
    """Run ``fn`` over ``payloads``, consulting the result cache first.

    Cached entries are returned as-is; only the misses are submitted to the
    executor, and their results are written back under the corresponding
    ``keys``.  Duplicate keys are computed (and stored) **once** and the
    result is fanned out to every occurrence — the returned list always
    follows the payload order.  When ``executor`` is a name (or None) the
    pool created here is closed before returning; instances are left open
    for their owner.
    """
    payloads = list(payloads)
    owned = executor_is_owned(executor)
    executor = get_executor(executor, max_workers)
    try:
        if cache is None or keys is None:
            return executor.run(fn, payloads)
        if len(keys) != len(payloads):
            raise ValueError(f"{len(keys)} keys for {len(payloads)} payloads")

        results: List[Any] = [_MISSING] * len(payloads)
        canonical: Dict[str, int] = {}  # key -> first index carrying it
        pending: List[int] = []
        for i, key in enumerate(keys):
            if key in canonical:
                continue  # duplicate: resolved by fan-out below
            canonical[key] = i
            hit, value = cache.get(key)
            if hit:
                results[i] = value
            else:
                pending.append(i)
        if pending:
            fresh = executor.run(fn, [payloads[i] for i in pending])
            for i, value in zip(pending, fresh):
                cache.put(keys[i], value)
                results[i] = value
        for i, key in enumerate(keys):
            if results[i] is _MISSING:
                results[i] = results[canonical[key]]
        return results
    finally:
        if owned:
            executor.close()
