"""Pluggable task executors for the optimization flow.

The flow's trainable units (per-lambda PIT searches, per-scheme QAT runs,
per-target deployments) are embarrassingly parallel: each unit derives its
own RNG stream from an explicitly spawned :class:`numpy.random.SeedSequence`
child and shares nothing with its siblings.  Executors only decide *where*
the units run:

* :class:`SerialExecutor` — in-process ``for`` loop (the reference),
* :class:`ProcessExecutor` — a ``concurrent.futures.ProcessPoolExecutor``
  worker pool.

Because every unit is seeded independently and results are gathered in
submission order, both executors produce **bit-identical** outputs for any
worker count (enforced by ``tests/test_parallel_flow.py``).

Task functions must be module-level (picklable) and their payloads must
survive a pickle round-trip; see the README's troubleshooting note for the
usual offenders (lambdas, locally-defined cost models, open file handles).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, Union

from .cache import ResultCache

EXECUTORS = ("serial", "process")


class SerialExecutor:
    """Run every task unit in the calling process, in submission order."""

    name = "serial"

    def run(self, fn: Callable[[Any], Any], payloads: Sequence[Any]) -> List[Any]:
        return [fn(payload) for payload in payloads]


class ProcessExecutor:
    """Run task units on a ``ProcessPoolExecutor`` worker pool.

    ``max_workers`` defaults to the machine's CPU count.  Results come back
    in submission order regardless of completion order, so swapping this in
    for :class:`SerialExecutor` never reorders (or otherwise changes) the
    output.  Worker exceptions propagate to the caller.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers or os.cpu_count() or 1

    def run(self, fn: Callable[[Any], Any], payloads: Sequence[Any]) -> List[Any]:
        payloads = list(payloads)
        if not payloads:
            return []
        workers = min(self.max_workers, len(payloads))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, payloads))


ExecutorLike = Union[str, SerialExecutor, ProcessExecutor]


def get_executor(
    executor: Optional[ExecutorLike] = None, max_workers: Optional[int] = None
) -> Union[SerialExecutor, ProcessExecutor]:
    """Resolve an executor name (or pass an instance through).

    ``executor`` may be ``"serial"``, ``"process"``, ``None`` (serial) or an
    object already exposing ``run(fn, payloads)``.
    """
    if executor is None:
        return SerialExecutor()
    if not isinstance(executor, str):
        if not callable(getattr(executor, "run", None)):
            raise TypeError(
                f"executor must be a name or expose run(fn, payloads); got "
                f"{type(executor).__name__}"
            )
        return executor
    name = executor.lower()
    if name == "serial":
        return SerialExecutor()
    if name == "process":
        return ProcessExecutor(max_workers=max_workers)
    raise ValueError(
        f"unknown executor {executor!r}; available: {', '.join(EXECUTORS)}"
    )


def run_tasks(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    executor: Optional[ExecutorLike] = None,
    max_workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    keys: Optional[Sequence[str]] = None,
) -> List[Any]:
    """Run ``fn`` over ``payloads``, consulting the result cache first.

    Cached entries are returned as-is; only the misses are submitted to the
    executor, and their results are written back under the corresponding
    ``keys``.  The returned list always follows the payload order.
    """
    payloads = list(payloads)
    executor = get_executor(executor, max_workers)
    if cache is None or keys is None:
        return executor.run(fn, payloads)
    if len(keys) != len(payloads):
        raise ValueError(f"{len(keys)} keys for {len(payloads)} payloads")

    results: List[Any] = [None] * len(payloads)
    pending: List[int] = []
    for i, key in enumerate(keys):
        hit, value = cache.get(key)
        if hit:
            results[i] = value
        else:
            pending.append(i)
    if pending:
        fresh = executor.run(fn, [payloads[i] for i in pending])
        for i, value in zip(pending, fresh):
            cache.put(keys[i], value)
            results[i] = value
    return results
