"""Content-addressed on-disk result cache for optimization-flow task units.

Every trainable unit of the flow (one PIT search per lambda, one QAT run per
precision scheme, one seed-model training, one per-target deployment) is a
pure function of *(derived seed, configuration, data)*.  The cache exploits
that purity: results are stored under a SHA-256 key computed from the full
task inputs, so a repeated flow run replays already-trained points from disk
— bit-identically, since the pickle round-trip of float64/int64 arrays is
exact — and any change to the seed, the configuration or the dataset content
changes the key and forces a re-run.

:func:`fingerprint` builds the key.  It hashes by *content*, not identity:
numpy arrays contribute dtype/shape/bytes, dataclasses their field values,
``repro.nn`` modules their class structure, scalar hyper-parameters and
parameter tensors, functions their qualified name plus captured closure
cells.  Objects may override the traversal with a ``cache_fingerprint()``
method returning any hashable structure.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Iterator, Tuple

import numpy as np


def _iter_module_parts(module) -> Iterator[Any]:
    """Structural + numerical identity of a ``repro.nn`` Module tree."""
    from ..nn.module import Module, Parameter

    for name, sub in module.named_modules():
        yield name
        yield type(sub).__qualname__
        for attr in sorted(vars(sub)):
            if attr.startswith("_") or attr == "training":
                continue
            value = vars(sub)[attr]
            # Modules and Parameters are covered by named_modules /
            # named_parameters below; here we want plain hyper-parameters
            # plus non-Parameter buffers (e.g. BatchNorm running stats,
            # which drive eval-mode inference and BN folding).
            if isinstance(value, (Module, Parameter, list, tuple)) and not isinstance(
                value, (str,)
            ):
                if isinstance(value, (list, tuple)) and all(
                    isinstance(v, (int, float, bool, str)) for v in value
                ):
                    yield (attr, tuple(value))
                continue
            if isinstance(value, np.ndarray):
                yield attr
                yield value
            elif isinstance(value, (int, float, bool, str)) or value is None:
                yield (attr, value)
    for name, param in module.named_parameters():
        yield name
        yield param.data


def _update(h: "hashlib._Hash", obj: Any) -> None:
    """Feed a canonical byte representation of ``obj`` into the hash."""
    from ..nn.module import Module, Parameter

    custom = getattr(obj, "cache_fingerprint", None)
    if custom is not None and callable(custom) and not isinstance(obj, type):
        h.update(b"custom:")
        h.update(type(obj).__qualname__.encode())
        _update(h, custom())
    elif obj is None:
        h.update(b"none")
    elif isinstance(obj, bool):
        h.update(b"bool:1" if obj else b"bool:0")
    elif isinstance(obj, int):
        h.update(b"int:" + str(obj).encode())
    elif isinstance(obj, float):
        h.update(b"float:" + np.float64(obj).tobytes())
    elif isinstance(obj, str):
        h.update(b"str:" + obj.encode())
    elif isinstance(obj, bytes):
        h.update(b"bytes:" + obj)
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        h.update(f"ndarray:{arr.dtype.str}:{arr.shape}:".encode())
        h.update(arr.tobytes())
    elif isinstance(obj, np.generic):
        _update(h, obj.item())
    elif isinstance(obj, np.random.SeedSequence):
        h.update(b"seedseq:")
        _update(h, (obj.entropy, tuple(obj.spawn_key), obj.pool_size))
    elif isinstance(obj, (list, tuple)):
        h.update(f"seq:{len(obj)}:".encode())
        for item in obj:
            _update(h, item)
    elif isinstance(obj, (set, frozenset)):
        h.update(f"set:{len(obj)}:".encode())
        for digest in sorted(fingerprint(item) for item in obj):
            h.update(digest.encode())
    elif isinstance(obj, dict):
        h.update(f"dict:{len(obj)}:".encode())
        entries = sorted((fingerprint(k), v) for k, v in obj.items())
        for key_digest, value in entries:
            h.update(key_digest.encode())
            _update(h, value)
    elif isinstance(obj, Parameter):
        h.update(b"parameter:")
        _update(h, obj.data)
    elif isinstance(obj, Module):
        h.update(b"module:")
        for part in _iter_module_parts(obj):
            _update(h, part)
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        h.update(b"dataclass:" + type(obj).__qualname__.encode())
        for field in dataclasses.fields(obj):
            h.update(field.name.encode())
            _update(h, getattr(obj, field.name))
    elif callable(obj) and hasattr(obj, "__qualname__"):
        # Functions / callables: identity by qualified name, captured closure
        # cells and default arguments, so two differently-configured builders
        # never collide on the same key.
        h.update(b"callable:")
        _update(h, (getattr(obj, "__module__", ""), obj.__qualname__))
        for cell in getattr(obj, "__closure__", None) or ():
            _update(h, cell.cell_contents)
        _update(h, getattr(obj, "__defaults__", None))
    else:
        # Generic object: class plus public attribute contents.  Attributes
        # may live in __dict__ or in __slots__ (collected across the MRO) —
        # hashing only __dict__ would collapse every instance of a
        # __slots__-only class onto one digest regardless of field values.
        h.update(b"object:" + type(obj).__qualname__.encode())
        state = dict(getattr(obj, "__dict__", None) or {})
        for klass in type(obj).__mro__:
            slots = klass.__dict__.get("__slots__", ())
            if isinstance(slots, str):
                slots = (slots,)
            for slot in slots:
                if slot in ("__dict__", "__weakref__") or slot in state:
                    continue
                try:
                    state[slot] = getattr(obj, slot)
                except AttributeError:
                    pass  # declared but never assigned
        if state:
            _update(h, {k: v for k, v in state.items() if not k.startswith("_")})


def fingerprint(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical content of ``parts``."""
    h = hashlib.sha256()
    for part in parts:
        _update(h, part)
    return h.hexdigest()


class ResultCache:
    """Pickle-backed on-disk store addressed by :func:`fingerprint` keys.

    Writes are atomic (temp file + rename) so concurrent workers or an
    interrupted run never leave a truncated entry behind; a corrupt or
    unreadable entry is treated as a miss and overwritten.  ``*.tmp`` files
    orphaned by a killed ``put()`` are swept on init and on ``clear()``
    (instances are created before any writes start, so the sweep cannot race
    an in-flight write of this process).
    """

    def __init__(self, root: os.PathLike | str):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> None:
        for orphan in self.root.glob("*.tmp"):
            with contextlib.suppress(OSError):
                orphan.unlink()

    # ------------------------------------------------------------------ #
    def path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def get(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; counts the lookup in hits/misses."""
        path = self.path(key)
        if path.is_file():
            try:
                with path.open("rb") as fh:
                    value = pickle.load(fh)
            except Exception:
                path.unlink(missing_ok=True)
            else:
                self.hits += 1
                return True, value
        self.misses += 1
        return False, None

    def put(self, key: str, value: Any) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self.path(key))
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.pkl"))

    def __contains__(self, key: str) -> bool:
        return self.path(key).is_file()

    def clear(self) -> None:
        for entry in self.root.glob("*.pkl"):
            entry.unlink(missing_ok=True)
        self._sweep_stale_tmp()

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
