"""`repro.parallel` — executor-based trial parallelism with result caching.

The optimization flow's slow layers are sweeps of independent training runs
(one PIT search per lambda, one QAT run per precision scheme, one
compile+verify per deployment target).  This package supplies the pieces
that turn those loops into parallel, resumable task units:

* **Executors** (:func:`get_executor`, :class:`SerialExecutor`,
  :class:`ThreadExecutor`, :class:`ProcessExecutor`) — where units run.
  Each unit carries its own :class:`numpy.random.SeedSequence`-derived RNG,
  so serial, thread and process execution are bit-identical for any worker
  count.  The process executor keeps one **persistent** worker pool across
  ``run()`` calls and is a context manager (``close()`` releases workers
  and shared memory).
* **Shared-memory handoff** (:mod:`repro.parallel.shm`) — large arrays are
  placed in ``multiprocessing.shared_memory`` once per run and referenced
  by tiny descriptors in task payloads, eliminating the per-task dataset
  pickling that made the PR-3 pool slower than serial.
* **Result cache** (:class:`ResultCache`, :func:`fingerprint`) — a
  content-addressed on-disk store keyed by (seed, config, dataset content),
  so repeated flow runs skip already-trained points.

Entry points are ``FlowConfig(executor=..., max_workers=..., cache_dir=...)``
and the ``executor`` / ``cache`` parameters of
:func:`repro.nas.search.run_search` and
:func:`repro.quant.mixed.explore_mixed_precision`.
"""

from .cache import ResultCache, fingerprint
from .executor import (
    EXECUTORS,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    executor_is_owned,
    get_executor,
    run_tasks,
)
from .shm import RingFull, SharedArray, ShmArena, ShmDescriptor, ShmRing, attach

__all__ = [
    "EXECUTORS",
    "ProcessExecutor",
    "ResultCache",
    "RingFull",
    "SerialExecutor",
    "SharedArray",
    "ShmArena",
    "ShmDescriptor",
    "ShmRing",
    "ThreadExecutor",
    "attach",
    "executor_is_owned",
    "fingerprint",
    "get_executor",
    "run_tasks",
]
