"""`repro.parallel` — executor-based trial parallelism with result caching.

The optimization flow's slow layers are sweeps of independent training runs
(one PIT search per lambda, one QAT run per precision scheme, one
compile+verify per deployment target).  This package supplies the two pieces
that turn those loops into parallel, resumable task units:

* **Executors** (:func:`get_executor`, :class:`SerialExecutor`,
  :class:`ProcessExecutor`) — where units run.  Each unit carries its own
  :class:`numpy.random.SeedSequence`-derived RNG, so serial and process
  execution are bit-identical for any worker count.
* **Result cache** (:class:`ResultCache`, :func:`fingerprint`) — a
  content-addressed on-disk store keyed by (seed, config, dataset content),
  so repeated flow runs skip already-trained points.

Entry points are ``FlowConfig(executor=..., max_workers=..., cache_dir=...)``
and the ``executor`` / ``cache`` parameters of
:func:`repro.nas.search.run_search` and
:func:`repro.quant.mixed.explore_mixed_precision`.
"""

from .cache import ResultCache, fingerprint
from .executor import (
    EXECUTORS,
    ProcessExecutor,
    SerialExecutor,
    get_executor,
    run_tasks,
)

__all__ = [
    "EXECUTORS",
    "ProcessExecutor",
    "ResultCache",
    "SerialExecutor",
    "fingerprint",
    "get_executor",
    "run_tasks",
]
