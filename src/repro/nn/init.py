"""Weight initialization helpers."""

from __future__ import annotations

import numpy as np


def _fan_in_out(shape) -> tuple[int, int]:
    """Compute fan-in / fan-out for a weight tensor.

    Supports linear weights ``(out, in)`` and convolution weights
    ``(out, in, kh, kw)``.
    """
    if len(shape) == 2:
        fan_out, fan_in = shape
    elif len(shape) == 4:
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        raise ValueError(f"unsupported weight shape {shape}")
    return int(fan_in), int(fan_out)


def kaiming_uniform(shape, rng: np.random.Generator, gain: float = np.sqrt(2.0)) -> np.ndarray:
    """He/Kaiming uniform init, suited to ReLU networks."""
    fan_in, _ = _fan_in_out(shape)
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def kaiming_normal(shape, rng: np.random.Generator, gain: float = np.sqrt(2.0)) -> np.ndarray:
    fan_in, _ = _fan_in_out(shape)
    std = gain / np.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def uniform_bias(shape, fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """PyTorch-style bias init: U(-1/sqrt(fan_in), 1/sqrt(fan_in))."""
    bound = 1.0 / np.sqrt(fan_in) if fan_in > 0 else 0.0
    return rng.uniform(-bound, bound, size=shape)
