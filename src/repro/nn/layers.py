"""Neural-network layers built on :mod:`repro.nn.functional`.

Every layer caches what its backward pass needs during ``forward`` and frees
nothing explicitly — caches are overwritten on the next forward call, which is
how the training loop uses them.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter


class Conv2d(Module):
    """2D convolution over NCHW inputs.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.
    kernel_size, stride, padding:
        Integers or ``(h, w)`` pairs.
    bias:
        Whether to learn an additive per-channel bias.
    rng:
        Generator used for weight initialization (kept explicit so the whole
        flow is reproducible from a single seed).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size,
        stride=1,
        padding=0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        kh, kw = F._pair(kernel_size)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = F._pair(stride)
        self.padding = F._pair(padding)
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels, kh, kw), rng)
        )
        fan_in = in_channels * kh * kw
        self.bias = (
            Parameter(init.uniform_bias((out_channels,), fan_in, rng)) if bias else None
        )
        self._cache: dict = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        bias = self.bias.data if self.bias is not None else None
        out, self._cache = F.conv2d_forward(
            x, self.weight.data, bias, self.stride, self.padding
        )
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_x, grad_w, grad_b = F.conv2d_backward(grad_output, self._cache)
        self.weight.grad += grad_w
        if self.bias is not None and grad_b is not None:
            self.bias.grad += grad_b
        return grad_x

    def output_shape(self, in_h: int, in_w: int):
        return F.conv_output_shape(in_h, in_w, self.kernel_size, self.stride, self.padding)

    def macs(self, in_h: int, in_w: int) -> int:
        """Multiply-accumulate operations for one input frame."""
        out_h, out_w = self.output_shape(in_h, in_w)
        kh, kw = self.kernel_size
        return int(out_h * out_w * self.out_channels * self.in_channels * kh * kw)


class Linear(Module):
    """Fully-connected layer ``y = x @ W.T + b`` over ``(N, in_features)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        self.bias = (
            Parameter(init.uniform_bias((out_features,), in_features, rng))
            if bias
            else None
        )
        self._cache: dict = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        bias = self.bias.data if self.bias is not None else None
        out, self._cache = F.linear_forward(x, self.weight.data, bias)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_x, grad_w, grad_b = F.linear_backward(grad_output, self._cache)
        self.weight.grad += grad_w
        if self.bias is not None and grad_b is not None:
            self.bias.grad += grad_b
        return grad_x

    def macs(self) -> int:
        return int(self.in_features * self.out_features)


class ReLU(Module):
    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, self._mask = F.relu_forward(x)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return F.relu_backward(grad_output, self._mask)


class MaxPool2d(Module):
    def __init__(self, kernel_size, stride=None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._cache: dict = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, self._cache = F.maxpool2d_forward(x, self.kernel_size, self.stride)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return F.maxpool2d_backward(grad_output, self._cache)


class Flatten(Module):
    """Flatten all dimensions but the batch one."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output.reshape(self._shape)


class BatchNorm2d(Module):
    """Batch normalization over the channel dimension of NCHW tensors."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: dict = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm2d expects (N, {self.num_features}, H, W), got {x.shape}"
            )
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            )
        else:
            mean = self.running_mean
            var = self.running_var

        m = mean[None, :, None, None]
        v = var[None, :, None, None]
        x_hat = (x - m) / np.sqrt(v + self.eps)
        out = self.gamma.data[None, :, None, None] * x_hat + self.beta.data[None, :, None, None]
        self._cache = {"x_hat": x_hat, "var": var, "x": x, "mean": mean}
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x_hat = self._cache["x_hat"]
        var = self._cache["var"]
        n, _, h, w = grad_output.shape
        m = n * h * w

        self.gamma.grad += (grad_output * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += grad_output.sum(axis=(0, 2, 3))

        gamma = self.gamma.data[None, :, None, None]
        inv_std = 1.0 / np.sqrt(var + self.eps)[None, :, None, None]
        grad_xhat = grad_output * gamma

        if not self.training:
            return grad_xhat * inv_std

        sum_grad = grad_xhat.sum(axis=(0, 2, 3), keepdims=True)
        sum_grad_xhat = (grad_xhat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        grad_x = (inv_std / m) * (m * grad_xhat - sum_grad - x_hat * sum_grad_xhat)
        return grad_x

    def fold_into(self, weight: np.ndarray, bias: Optional[np.ndarray]):
        """Return ``(folded_weight, folded_bias)`` merging this BN into the
        preceding convolution/linear layer (inference-time BN folding).

        ``weight`` has the output channel on axis 0.
        """
        scale = self.gamma.data / np.sqrt(self.running_var + self.eps)
        folded_w = weight * scale.reshape((-1,) + (1,) * (weight.ndim - 1))
        base_bias = bias if bias is not None else np.zeros(weight.shape[0])
        folded_b = (base_bias - self.running_mean) * scale + self.beta.data
        return folded_w, folded_b


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask
