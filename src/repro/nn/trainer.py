"""Generic training loop used across the NAS, QAT and baseline experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from .data import ArrayDataset, DataLoader
from .losses import CrossEntropyLoss
from .metrics import balanced_accuracy
from .module import Module
from .optim import Adam, Optimizer


@dataclass
class TrainConfig:
    """Hyper-parameters of a training run.

    Defaults follow the paper (Adam, lr=1e-3, batch size 128); the epoch
    count is left to the caller since the paper's 500 epochs are scaled down
    in the benchmark harness.
    """

    epochs: int = 20
    batch_size: int = 128
    learning_rate: float = 1e-3
    weight_decay: float = 0.0
    shuffle: bool = True
    early_stop_patience: Optional[int] = None
    verbose: bool = False


@dataclass
class TrainHistory:
    """Per-epoch metrics collected during training."""

    train_loss: List[float] = field(default_factory=list)
    val_bas: List[float] = field(default_factory=list)
    best_val_bas: float = float("nan")
    best_epoch: int = -1
    best_state: Optional[dict] = None


def predict(model: Module, inputs: np.ndarray, batch_size: int = 256) -> np.ndarray:
    """Run inference and return the argmax class per sample."""
    model.eval()
    preds = []
    for start in range(0, inputs.shape[0], batch_size):
        logits = model(inputs[start : start + batch_size])
        preds.append(np.argmax(logits, axis=1))
    return np.concatenate(preds) if preds else np.empty(0, dtype=np.int64)


def evaluate_bas(model: Module, dataset: ArrayDataset, num_classes: int = 4) -> float:
    """Balanced accuracy of a model over a dataset."""
    preds = predict(model, dataset.inputs)
    return balanced_accuracy(dataset.targets, preds, num_classes)


def train_model(
    model: Module,
    train_set: ArrayDataset,
    val_set: Optional[ArrayDataset] = None,
    config: Optional[TrainConfig] = None,
    loss_fn: Optional[CrossEntropyLoss] = None,
    optimizer: Optional[Optimizer] = None,
    rng: Optional[np.random.Generator] = None,
    epoch_callback: Optional[Callable[[int, Module], None]] = None,
    extra_loss: Optional[Callable[[Module], tuple]] = None,
) -> TrainHistory:
    """Train ``model`` on ``train_set``.

    Parameters
    ----------
    extra_loss:
        Optional callable returning ``(penalty_value, apply_gradients_fn)``;
        used by the DNAS to add the differentiable cost regularizer
        ``lambda * C(theta)`` on top of the task loss.  The second element is
        a zero-argument callable that accumulates the penalty gradients onto
        the relevant parameters, invoked after the task backward pass.
    epoch_callback:
        Called as ``epoch_callback(epoch_index, model)`` at the end of every
        epoch (used e.g. to anneal the NAS mask temperature).

    Returns
    -------
    TrainHistory with per-epoch losses and validation BAS.  When a validation
    set is given, the model is restored to the best-validation-BAS weights
    before returning.
    """
    config = config or TrainConfig()
    loss_fn = loss_fn or CrossEntropyLoss()
    rng = rng if rng is not None else np.random.default_rng(0)
    if optimizer is None:
        optimizer = Adam(
            model.parameters(), lr=config.learning_rate, weight_decay=config.weight_decay
        )

    loader = DataLoader(
        train_set, batch_size=config.batch_size, shuffle=config.shuffle, rng=rng
    )
    history = TrainHistory()
    epochs_without_improvement = 0

    for epoch in range(config.epochs):
        model.train()
        epoch_losses = []
        for batch_x, batch_y in loader:
            optimizer.zero_grad()
            logits = model(batch_x)
            loss, grad = loss_fn(logits, batch_y)
            if extra_loss is not None:
                penalty, apply_penalty_grads = extra_loss(model)
                loss = loss + penalty
            model.backward(grad)
            if extra_loss is not None:
                apply_penalty_grads()
            optimizer.step()
            epoch_losses.append(loss)
        history.train_loss.append(float(np.mean(epoch_losses)) if epoch_losses else 0.0)

        if val_set is not None:
            bas = evaluate_bas(model, val_set)
            history.val_bas.append(bas)
            if history.best_epoch < 0 or bas > history.best_val_bas:
                history.best_val_bas = bas
                history.best_epoch = epoch
                history.best_state = model.state_dict()
                epochs_without_improvement = 0
            else:
                epochs_without_improvement += 1
            if (
                config.early_stop_patience is not None
                and epochs_without_improvement >= config.early_stop_patience
            ):
                break

        if epoch_callback is not None:
            epoch_callback(epoch, model)

        if config.verbose:
            msg = f"epoch {epoch + 1}/{config.epochs} loss={history.train_loss[-1]:.4f}"
            if val_set is not None:
                msg += f" val_bas={history.val_bas[-1]:.4f}"
            print(msg)

    if val_set is not None and history.best_state is not None:
        model.load_state_dict(history.best_state)
    # Trained models travel across process boundaries (parallel executors)
    # and into the on-disk result cache; shed the per-batch backward buffers
    # so they pickle at parameter size rather than activation size.
    model.clear_caches()
    return history
