"""Loss functions.

Losses are not :class:`~repro.nn.module.Module` subclasses: they return both
the scalar loss and the gradient w.r.t. the network output, which the caller
feeds into ``model.backward``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .functional import log_softmax, softmax


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class labels.

    Parameters
    ----------
    class_weights:
        Optional per-class weights (e.g. inverse class frequency, useful for
        the heavily imbalanced people-counting labels).
    """

    def __init__(self, class_weights: Optional[np.ndarray] = None):
        self.class_weights = (
            np.asarray(class_weights, dtype=np.float64)
            if class_weights is not None
            else None
        )

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
        """Return ``(loss, grad_logits)``.

        ``logits`` has shape ``(N, num_classes)``, ``targets`` shape ``(N,)``.
        """
        logits = np.asarray(logits, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.int64)
        n, num_classes = logits.shape
        if targets.min() < 0 or targets.max() >= num_classes:
            raise ValueError(
                f"targets out of range [0, {num_classes}): "
                f"[{targets.min()}, {targets.max()}]"
            )

        log_probs = log_softmax(logits, axis=1)
        picked = log_probs[np.arange(n), targets]

        if self.class_weights is not None:
            if self.class_weights.shape[0] != num_classes:
                raise ValueError(
                    f"class_weights has {self.class_weights.shape[0]} entries, "
                    f"expected {num_classes}"
                )
            weights = self.class_weights[targets]
        else:
            weights = np.ones(n)

        total_weight = weights.sum()
        loss = float(-(weights * picked).sum() / total_weight)

        probs = softmax(logits, axis=1)
        grad = probs.copy()
        grad[np.arange(n), targets] -= 1.0
        grad *= weights[:, None] / total_weight
        return loss, grad


class MSELoss:
    """Mean squared error, mostly used in tests and sanity checks."""

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> Tuple[float, np.ndarray]:
        pred = np.asarray(pred, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if pred.shape != target.shape:
            raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
        diff = pred - target
        loss = float((diff**2).mean())
        grad = 2.0 * diff / diff.size
        return loss, grad


def balanced_class_weights(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Inverse-frequency class weights normalized to mean 1.

    Classes absent from ``labels`` get the maximum weight among present
    classes so that a fine-tuning fold missing a rare class does not blow up.
    """
    labels = np.asarray(labels, dtype=np.int64)
    counts = np.bincount(labels, minlength=num_classes).astype(np.float64)
    present = counts > 0
    weights = np.zeros(num_classes)
    weights[present] = counts[present].sum() / (present.sum() * counts[present])
    if (~present).any():
        weights[~present] = weights[present].max() if present.any() else 1.0
    return weights / weights.mean()
