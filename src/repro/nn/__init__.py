"""A compact numpy-based deep learning framework.

This package is the substrate replacing PyTorch for the reproduction: it
provides the layers, losses, optimizers and training utilities that the NAS,
quantization and deployment stages build on.
"""

from .module import Identity, Module, Parameter, Sequential
from .layers import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
)
from .losses import CrossEntropyLoss, MSELoss, balanced_class_weights
from .optim import Adam, CosineAnnealingLR, Optimizer, SGD, StepLR
from .metrics import accuracy, balanced_accuracy, confusion_matrix, macro_f1, per_class_recall
from .data import ArrayDataset, DataLoader, train_val_split
from .trainer import TrainConfig, TrainHistory, evaluate_bas, predict, train_model

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Identity",
    "Conv2d",
    "Linear",
    "ReLU",
    "MaxPool2d",
    "Flatten",
    "BatchNorm2d",
    "Dropout",
    "CrossEntropyLoss",
    "MSELoss",
    "balanced_class_weights",
    "Adam",
    "SGD",
    "Optimizer",
    "StepLR",
    "CosineAnnealingLR",
    "accuracy",
    "balanced_accuracy",
    "confusion_matrix",
    "macro_f1",
    "per_class_recall",
    "ArrayDataset",
    "DataLoader",
    "train_val_split",
    "TrainConfig",
    "TrainHistory",
    "train_model",
    "predict",
    "evaluate_bas",
]
