"""Module and Parameter abstractions for the numpy DNN framework.

The framework follows a layer-graph design: every :class:`Module` implements
``forward(x)`` and ``backward(grad_output)``.  ``backward`` consumes the
gradient of the loss w.r.t. the module output, accumulates gradients on the
module's :class:`Parameter` objects, and returns the gradient w.r.t. the
module input.  This explicit-backward style keeps the framework small while
still supporting everything the paper's flow needs (trainable NAS masks,
straight-through estimators for quantization-aware training, learnable
activation clipping).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np


class Parameter:
    """A trainable tensor with an associated gradient buffer.

    Parameters
    ----------
    data:
        Initial value.  Stored as ``float64`` for numerical robustness of
        gradient checks; training works equally with float32 inputs.
    name:
        Optional human readable name, filled in by :meth:`Module.parameters`.
    requires_grad:
        When ``False`` the optimizer skips this parameter (used, e.g., to
        freeze weights while searching NAS masks only).
    """

    def __init__(self, data: np.ndarray, name: str = "", requires_grad: bool = True):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name
        self.requires_grad = requires_grad

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------ #
    # Forward / backward
    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # ------------------------------------------------------------------ #
    # Parameter / submodule discovery
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(name, Parameter)`` pairs for this module and children."""
        for attr, value in vars(self).items():
            full = f"{prefix}{attr}" if prefix == "" else f"{prefix}.{attr}"
            if isinstance(value, Parameter):
                if not value.name:
                    value.name = full
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(full)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{full}.{i}")
                    elif isinstance(item, Parameter):
                        if not item.name:
                            item.name = f"{full}.{i}"
                        yield f"{full}.{i}", item

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for attr, value in vars(self).items():
            full = f"{prefix}{attr}" if prefix == "" else f"{prefix}.{attr}"
            if isinstance(value, Module):
                yield from value.named_modules(full)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_modules(f"{full}.{i}")

    def modules(self) -> List["Module"]:
        return [m for _, m in self.named_modules()]

    # ------------------------------------------------------------------ #
    # Mode switching and utility
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        for m in self.modules():
            m.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def clear_caches(self) -> "Module":
        """Drop the transient forward/backward tensors.

        Layers stash the last batch's activations for the backward pass
        (``_cache`` dicts, the ReLU/Dropout ``_mask`` arrays, the Flatten
        ``_shape``); those buffers dwarf the actual parameters and would
        otherwise travel with every pickled model (process-pool task
        results, the on-disk result cache).  Clearing them is always safe:
        a forward pass repopulates them before any backward reads them.
        """
        for m in self.modules():
            if hasattr(m, "_cache"):
                m._cache = {}
            if hasattr(m, "_mask"):
                m._mask = None
            if hasattr(m, "_shape"):
                m._shape = None
        return self

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, p in own.items():
            if p.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{p.data.shape} vs {state[name].shape}"
                )
            p.data = np.asarray(state[name], dtype=np.float64).copy()

    def num_parameters(self, trainable_only: bool = False) -> int:
        params = self.parameters()
        if trainable_only:
            params = [p for p in params if p.requires_grad]
        return int(sum(p.size for p in params))


class Sequential(Module):
    """A chain of modules executed in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers: List[Module] = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output

    def append(self, layer: Module) -> "Sequential":
        self.layers.append(layer)
        return self

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)


class Identity(Module):
    """No-op layer, handy as a placeholder when rewriting graphs."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output
