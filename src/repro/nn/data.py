"""Minimal dataset / dataloader utilities."""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np


class ArrayDataset:
    """A dataset backed by in-memory numpy arrays.

    Parameters
    ----------
    inputs:
        Array of shape ``(N, ...)``.
    targets:
        Array of shape ``(N,)`` (integer labels) or ``(N, ...)``.
    """

    def __init__(self, inputs: np.ndarray, targets: np.ndarray):
        inputs = np.asarray(inputs)
        targets = np.asarray(targets)
        if inputs.shape[0] != targets.shape[0]:
            raise ValueError(
                f"inputs and targets disagree on N: {inputs.shape[0]} vs {targets.shape[0]}"
            )
        self.inputs = inputs
        self.targets = targets

    def __len__(self) -> int:
        return int(self.inputs.shape[0])

    def __getitem__(self, idx) -> Tuple[np.ndarray, np.ndarray]:
        return self.inputs[idx], self.targets[idx]

    def subset(self, indices: Sequence[int]) -> "ArrayDataset":
        indices = np.asarray(indices)
        return ArrayDataset(self.inputs[indices], self.targets[indices])

    def cache_fingerprint(self):
        """Content identity used by :mod:`repro.parallel` result caching:
        two datasets with equal arrays share cached results, and any change
        to the data invalidates them."""
        return ("ArrayDataset", self.inputs, self.targets)


class DataLoader:
    """Iterate over a dataset in (optionally shuffled) mini-batches."""

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 128,
        shuffle: bool = False,
        drop_last: bool = False,
        rng: Optional[np.random.Generator] = None,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = rng if rng is not None else np.random.default_rng()

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = np.arange(n)
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, n, self.batch_size):
            batch = order[start : start + self.batch_size]
            if self.drop_last and batch.size < self.batch_size:
                break
            yield self.dataset.inputs[batch], self.dataset.targets[batch]


def train_val_split(
    dataset: ArrayDataset,
    val_fraction: float = 0.1,
    rng: Optional[np.random.Generator] = None,
    stratify: bool = True,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Split a dataset into train / validation parts.

    When ``stratify`` is True the split preserves class proportions, which
    matters for the rare 3-people class.
    """
    if not 0.0 < val_fraction < 1.0:
        raise ValueError("val_fraction must be in (0, 1)")
    rng = rng if rng is not None else np.random.default_rng()
    n = len(dataset)
    targets = np.asarray(dataset.targets)

    if stratify and targets.ndim == 1:
        val_idx = []
        for cls in np.unique(targets):
            cls_idx = np.flatnonzero(targets == cls)
            rng.shuffle(cls_idx)
            take = max(1, int(round(val_fraction * cls_idx.size)))
            val_idx.extend(cls_idx[:take].tolist())
        val_idx = np.asarray(sorted(val_idx))
    else:
        order = rng.permutation(n)
        val_idx = np.sort(order[: max(1, int(round(val_fraction * n)))])

    mask = np.zeros(n, dtype=bool)
    mask[val_idx] = True
    return dataset.subset(np.flatnonzero(~mask)), dataset.subset(np.flatnonzero(mask))
