"""Optimizers and learning-rate schedulers."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .module import Parameter


class Optimizer:
    """Base optimizer holding a flat list of parameters."""

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: List[Parameter] = [p for p in params]
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if not p.requires_grad:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                update = v
            else:
                update = grad
            p.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba), the one used throughout the paper."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if not p.requires_grad:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepLR:
    """Decay the optimizer learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        decays = self.epoch // self.step_size
        self.optimizer.lr = self.base_lr * (self.gamma**decays)


class CosineAnnealingLR:
    """Cosine annealing from the base LR down to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.optimizer = optimizer
        self.t_max = t_max
        self.eta_min = eta_min
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        t = min(self.epoch, self.t_max)
        self.optimizer.lr = self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1.0 + np.cos(np.pi * t / self.t_max)
        )
