"""Classification metrics used in the paper's evaluation.

The paper reports the Balanced Accuracy Score (BAS), i.e. the macro average of
per-class recall, which is robust to the strong class imbalance of
people-counting data (most frames contain 0 or 1 person).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, num_classes: Optional[int] = None
) -> np.ndarray:
    """Confusion matrix ``C[t, p]`` = number of samples of class ``t``
    predicted as class ``p``."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if num_classes is None:
        num_classes = int(max(y_true.max(), y_pred.max())) + 1 if y_true.size else 0
    cm = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(cm, (y_true, y_pred), 1)
    return cm


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.size == 0:
        raise ValueError("accuracy of an empty set is undefined")
    return float((y_true == y_pred).mean())


def balanced_accuracy(
    y_true: np.ndarray, y_pred: np.ndarray, num_classes: Optional[int] = None
) -> float:
    """Balanced Accuracy Score: mean per-class recall over classes present in
    ``y_true`` (classes never observed are excluded from the average)."""
    cm = confusion_matrix(y_true, y_pred, num_classes)
    support = cm.sum(axis=1)
    present = support > 0
    if not present.any():
        raise ValueError("balanced accuracy of an empty set is undefined")
    recall = np.zeros(cm.shape[0])
    recall[present] = np.diag(cm)[present] / support[present]
    return float(recall[present].mean())


def per_class_recall(
    y_true: np.ndarray, y_pred: np.ndarray, num_classes: Optional[int] = None
) -> np.ndarray:
    """Per-class recall; NaN for classes with no support."""
    cm = confusion_matrix(y_true, y_pred, num_classes)
    support = cm.sum(axis=1).astype(np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        recall = np.diag(cm) / support
    return recall


def macro_f1(
    y_true: np.ndarray, y_pred: np.ndarray, num_classes: Optional[int] = None
) -> float:
    """Macro-averaged F1 over classes with support."""
    cm = confusion_matrix(y_true, y_pred, num_classes)
    tp = np.diag(cm).astype(np.float64)
    support = cm.sum(axis=1)
    predicted = cm.sum(axis=0)
    present = support > 0
    with np.errstate(invalid="ignore", divide="ignore"):
        precision = np.where(predicted > 0, tp / predicted, 0.0)
        recall = np.where(support > 0, tp / support, 0.0)
        f1 = np.where(precision + recall > 0, 2 * precision * recall / (precision + recall), 0.0)
    if not present.any():
        raise ValueError("macro F1 of an empty set is undefined")
    return float(f1[present].mean())
