"""Low-level numerical primitives shared by layers.

Convolutions are implemented with im2col/col2im so the heavy lifting happens
inside a single matrix multiplication; this is the standard approach for
CPU-only frameworks and keeps 8x8 infrared inputs fast enough for training.
All functions operate on NCHW tensors (batch, channels, height, width).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _pair(value) -> Tuple[int, int]:
    """Normalize an int or 2-tuple into a (h, w) pair."""
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(f"expected a 2-tuple, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def conv_output_shape(
    in_h: int, in_w: int, kernel_size, stride=1, padding=0
) -> Tuple[int, int]:
    """Spatial output shape of a convolution / pooling window."""
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    out_h = (in_h + 2 * ph - kh) // sh + 1
    out_w = (in_w + 2 * pw - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"convolution produces empty output: input {in_h}x{in_w}, "
            f"kernel {kh}x{kw}, stride {sh}x{sw}, padding {ph}x{pw}"
        )
    return out_h, out_w


def im2col(
    x: np.ndarray, kernel_size, stride=1, padding=0
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold image patches into columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.

    Returns
    -------
    cols:
        Array of shape ``(N * out_h * out_w, C * kh * kw)``.
    out_shape:
        ``(out_h, out_w)``.
    """
    n, c, h, w = x.shape
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    out_h, out_w = conv_output_shape(h, w, (kh, kw), (sh, sw), (ph, pw))

    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)), mode="constant")

    # Strided sliding-window view: (N, C, out_h, out_w, kh, kw)
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(s0, s1, s2 * sh, s3 * sw, s2, s3),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c * kh * kw)
    return np.ascontiguousarray(cols), (out_h, out_w)


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel_size,
    stride=1,
    padding=0,
) -> np.ndarray:
    """Inverse of :func:`im2col`, accumulating overlapping patches."""
    n, c, h, w = input_shape
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    out_h, out_w = conv_output_shape(h, w, (kh, kw), (sh, sw), (ph, pw))

    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    cols6 = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i : i + out_h * sh : sh, j : j + out_w * sw : sw] += cols6[
                :, :, :, :, i, j
            ]
    if ph or pw:
        return padded[:, :, ph : ph + h, pw : pw + w]
    return padded


def conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride=1,
    padding=0,
) -> Tuple[np.ndarray, dict]:
    """2D convolution forward pass.

    Parameters
    ----------
    x:
        ``(N, C_in, H, W)`` input.
    weight:
        ``(C_out, C_in, kh, kw)`` filters.
    bias:
        ``(C_out,)`` or ``None``.

    Returns
    -------
    out, cache:
        ``out`` has shape ``(N, C_out, out_h, out_w)``; ``cache`` holds the
        tensors needed by :func:`conv2d_backward`.
    """
    n = x.shape[0]
    c_out, c_in, kh, kw = weight.shape
    if x.shape[1] != c_in:
        raise ValueError(f"channel mismatch: input {x.shape[1]} vs weight {c_in}")
    cols, (out_h, out_w) = im2col(x, (kh, kw), stride, padding)
    w_mat = weight.reshape(c_out, -1)
    out = cols @ w_mat.T
    if bias is not None:
        out = out + bias
    out = out.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)
    cache = {
        "cols": cols,
        "x_shape": x.shape,
        "weight": weight,
        "stride": stride,
        "padding": padding,
        "has_bias": bias is not None,
    }
    return out, cache


def conv2d_backward(grad_out: np.ndarray, cache: dict):
    """Backward pass of :func:`conv2d_forward`.

    Returns ``(grad_x, grad_weight, grad_bias)``; ``grad_bias`` is ``None``
    when the forward pass had no bias.
    """
    cols = cache["cols"]
    weight = cache["weight"]
    c_out = weight.shape[0]
    n, _, out_h, out_w = grad_out.shape

    grad_mat = grad_out.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, c_out)
    grad_weight = (grad_mat.T @ cols).reshape(weight.shape)
    grad_bias = grad_mat.sum(axis=0) if cache["has_bias"] else None
    grad_cols = grad_mat @ weight.reshape(c_out, -1)
    grad_x = col2im(
        grad_cols,
        cache["x_shape"],
        weight.shape[2:],
        cache["stride"],
        cache["padding"],
    )
    return grad_x, grad_weight, grad_bias


def maxpool2d_forward(x: np.ndarray, kernel_size, stride=None) -> Tuple[np.ndarray, dict]:
    """2D max pooling forward; ``stride`` defaults to ``kernel_size``."""
    if stride is None:
        stride = kernel_size
    n, c, h, w = x.shape
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride)
    out_h, out_w = conv_output_shape(h, w, (kh, kw), (sh, sw), 0)

    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(s0, s1, s2 * sh, s3 * sw, s2, s3),
        writeable=False,
    )
    flat = windows.reshape(n, c, out_h, out_w, kh * kw)
    argmax = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]
    cache = {
        "argmax": argmax,
        "x_shape": x.shape,
        "kernel": (kh, kw),
        "stride": (sh, sw),
        "out_shape": (out_h, out_w),
    }
    return out, cache


def maxpool2d_backward(grad_out: np.ndarray, cache: dict) -> np.ndarray:
    """Backward pass of :func:`maxpool2d_forward` (scatter to argmax)."""
    n, c, h, w = cache["x_shape"]
    kh, kw = cache["kernel"]
    sh, sw = cache["stride"]
    out_h, out_w = cache["out_shape"]
    argmax = cache["argmax"]

    grad_x = np.zeros((n, c, h, w), dtype=grad_out.dtype)
    ki = argmax // kw
    kj = argmax % kw
    oi = np.arange(out_h)[None, None, :, None]
    oj = np.arange(out_w)[None, None, None, :]
    rows = oi * sh + ki
    cols = oj * sw + kj
    ni = np.arange(n)[:, None, None, None]
    ci = np.arange(c)[None, :, None, None]
    np.add.at(grad_x, (ni, ci, rows, cols), grad_out)
    return grad_x


def relu_forward(x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    mask = x > 0
    return x * mask, mask


def relu_backward(grad_out: np.ndarray, mask: np.ndarray) -> np.ndarray:
    return grad_out * mask


def linear_forward(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None
) -> Tuple[np.ndarray, dict]:
    """Fully-connected layer forward: ``y = x @ W.T + b``.

    ``weight`` has shape ``(out_features, in_features)``.
    """
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out, {"x": x, "weight": weight, "has_bias": bias is not None}


def linear_backward(grad_out: np.ndarray, cache: dict):
    x, weight = cache["x"], cache["weight"]
    grad_weight = grad_out.T @ x
    grad_bias = grad_out.sum(axis=0) if cache["has_bias"] else None
    grad_x = grad_out @ weight
    return grad_x, grad_weight, grad_bias


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
